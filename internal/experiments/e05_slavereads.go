package experiments

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func init() {
	register("E5", "Slave reads: latency win vs staleness cost",
		"§3.3.2", runE5)
	register("E6", "PS master-only reads: zero staleness at backbone cost",
		"§3.3.3", runE6)
}

// e5Setup builds the UDR and returns a subscriber whose master is
// remote from the reading site.
func e5Setup(opts Options, mutate ...func(*core.Config)) (net *simnet.Network, u *core.UDR, reader string, target *subscriber.Profile, err error) {
	subs, _ := sizes(opts)
	n, udr, profiles, err := buildUDR(opts, subs, mutate...)
	if err != nil {
		return nil, nil, "", nil, err
	}
	sites := udr.Sites()
	reader = sites[0]
	for _, p := range profiles {
		if p.HomeRegion != reader {
			target = p
			break
		}
	}
	return n, udr, reader, target, nil
}

// runE5 reproduces §3.3.2 decision 2: allowing FE reads on slave
// copies turns a backbone round trip into a LAN one when the slave is
// co-located with the PoA — at the price of "a certain chance that a
// read operation on a slave replica gets stale data".
func runE5(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E5", "Slave reads: latency win vs staleness cost")
	_, ops := sizes(opts)

	measure := func(slaveReads bool) (lat metrics.Snapshot, staleRate float64, err error) {
		net, u, reader, target, err := e5Setup(opts, func(c *core.Config) { c.FESlaveReads = slaveReads })
		if err != nil {
			return metrics.Snapshot{}, 0, err
		}
		defer u.Stop()

		fe := feSession(net, reader)
		writer := psSession(net, target.HomeRegion)
		id := subscriber.Identity{Type: subscriber.IMSI, Value: target.IMSIVal}

		var hist metrics.Histogram
		stale, total := 0, 0
		for i := 0; i < ops; i++ {
			// Write a version marker at the master...
			wr, err := writer.Exec(ctx, core.ExecReq{
				Identity: id,
				Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
					Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{strconv.Itoa(i)},
				}}}},
			})
			if err != nil {
				return metrics.Snapshot{}, 0, err
			}
			// ...and immediately read from the remote site. With
			// slave reads the local copy may not have caught up:
			// the CSN tells us whether the read was stale.
			start := time.Now()
			resp, err := fe.Exec(ctx, core.ExecReq{
				Identity: id,
				Ops:      []se.TxnOp{{Kind: se.TxnGet}},
			})
			if err != nil {
				return metrics.Snapshot{}, 0, err
			}
			hist.Record(time.Since(start))
			total++
			if resp.Results[0].Meta.CSN < wr.CSN {
				stale++
			}
		}
		return hist.Snapshot(), float64(stale) / float64(total), nil
	}

	withSlaves, staleWith, err := measure(true)
	if err != nil {
		return nil, err
	}
	masterOnly, staleWithout, err := measure(false)
	if err != nil {
		return nil, err
	}

	rep.AddRow("mode", "read p50", "read p95", "stale reads")
	rep.AddRow("slave reads allowed (paper FE)", withSlaves.P50.String(), withSlaves.P95.String(),
		fmt.Sprintf("%.1f%%", 100*staleWith))
	rep.AddRow("master-only reads", masterOnly.P50.String(), masterOnly.P95.String(),
		fmt.Sprintf("%.1f%%", 100*staleWithout))

	backbone := netConfig(opts).Backbone.Latency
	rep.Check("slave reads are faster (LAN vs backbone)", withSlaves.P50 < masterOnly.P50)
	rep.Check("master-only read pays the backbone RTT", masterOnly.P50 >= 2*backbone)
	rep.Check("slave reads can be stale, master reads never", staleWith > 0 && staleWithout == 0)
	rep.Note("read issued immediately after a remote master write; staleness detected by comparing row CSN to the write's CSN")
	rep.Note("paper: 'asynchronous replication does not guarantee real-time sync between replicas, there's a certain chance that a read operation on a slave replica gets stale data'")
	return rep, nil
}

// runE6 reproduces §3.3.3: the PS reads master copies only, because a
// provisioning read-modify-write acting on stale data is worse than a
// slow one — "the chance of the PS reading stale data is too high".
func runE6(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E6", "PS master-only reads: zero staleness at backbone cost")
	_, ops := sizes(opts)
	net, u, reader, target, err := e5Setup(opts)
	if err != nil {
		return nil, err
	}
	defer u.Stop()

	feSess := feSession(net, reader)
	psSess := psSession(net, reader)
	writer := psSession(net, target.HomeRegion)
	id := subscriber.Identity{Type: subscriber.IMSI, Value: target.IMSIVal}

	var feHist, psHist metrics.Histogram
	feStale, psStale := 0, 0
	for i := 0; i < ops; i++ {
		wr, err := writer.Exec(ctx, core.ExecReq{
			Identity: id,
			Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
				Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{strconv.Itoa(i)},
			}}}},
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		feResp, err := feSess.Exec(ctx, core.ExecReq{Identity: id, Ops: []se.TxnOp{{Kind: se.TxnGet}}})
		if err != nil {
			return nil, err
		}
		feHist.Record(time.Since(start))
		if feResp.Results[0].Meta.CSN < wr.CSN {
			feStale++
		}

		start = time.Now()
		psResp, err := psSess.Exec(ctx, core.ExecReq{Identity: id, Ops: []se.TxnOp{{Kind: se.TxnGet}}})
		if err != nil {
			return nil, err
		}
		psHist.Record(time.Since(start))
		if psResp.Results[0].Meta.CSN < wr.CSN {
			psStale++
		}
	}

	fe, p := feHist.Snapshot(), psHist.Snapshot()
	rep.AddRow("client", "routing", "read p50", "stale reads")
	rep.AddRow("FE", "nearest replica", fe.P50.String(), fmt.Sprintf("%d/%d", feStale, ops))
	rep.AddRow("PS", "master only", p.P50.String(), fmt.Sprintf("%d/%d", psStale, ops))
	rep.Check("PS reads are never stale", psStale == 0)
	rep.Check("FE reads can be stale under identical load", feStale > 0)
	rep.Check("PS pays the backbone for remote-mastered data", p.P50 > fe.P50)
	rep.Note("paper: 'it is not possible to read from a slave replica and write on the master replica within one atomic transaction... the chance of the PS reading stale data is too high'")
	return rep, nil
}
