package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/subscriber"
)

// sizes returns the population scale for an experiment.
func sizes(opts Options) (subs, ops int) {
	if opts.Quick {
		return 30, 60
	}
	return 300, 600
}

// netConfig returns the experiment network: measurable local-vs-
// backbone asymmetry at a compressed scale (paper backbone one-way
// delays of tens of ms are scaled ~10x down; reports note the
// scale). Local latencies stay under the simnet spin threshold so
// they are accurate despite coarse OS timers.
func netConfig(opts Options) simnet.Config {
	cfg := simnet.Config{
		Local:    simnet.Link{Latency: 30 * time.Microsecond, Timeout: 4 * time.Millisecond},
		Backbone: simnet.Link{Latency: 3 * time.Millisecond, Timeout: 12 * time.Millisecond},
		Seed:     opts.Seed + 1,
	}
	if opts.Quick {
		cfg.Local.Latency = 20 * time.Microsecond
		cfg.Backbone.Latency = 2 * time.Millisecond
		cfg.Backbone.Timeout = 8 * time.Millisecond
	}
	return cfg
}

// buildUDR builds a three-site Figure 2 UDR and seeds subs
// subscribers round-robin across the regions.
func buildUDR(opts Options, subs int, mutate ...func(*core.Config)) (*simnet.Network, *core.UDR, []*subscriber.Profile, error) {
	net := simnet.New(netConfig(opts))
	cfg := core.DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	u, err := core.New(net, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	gen := subscriber.NewGenerator(u.Sites()...)
	profiles := make([]*subscriber.Profile, 0, subs)
	for i := 0; i < subs; i++ {
		p := gen.Profile(i)
		if err := u.SeedDirect(p); err != nil {
			u.Stop()
			return nil, nil, nil, err
		}
		profiles = append(profiles, p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := u.WaitReplication(ctx); err != nil {
		u.Stop()
		return nil, nil, nil, err
	}
	return net, u, profiles, nil
}

// feSession returns an FE-policy session at the given site.
func feSession(net *simnet.Network, site string) *core.Session {
	return core.NewSession(net, simnet.MakeAddr(site, "fe-exp"), site, core.PolicyFE)
}

// psSession returns a PS-policy session at the given site.
func psSession(net *simnet.Network, site string) *core.Session {
	return core.NewSession(net, simnet.MakeAddr(site, "ps-exp"), site, core.PolicyPS)
}

func pct(n, total int) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}
