package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/workload"
)

func init() {
	register("E22", "FE read cache: hot-key (Zipfian) throughput and tail latency vs read-through",
		"§2.3, §3.3.2 (FE read path; caching extension)", runE22)
}

// runE22 measures what the PoA subscriber cache buys on the paper's
// busy-hour traffic shape: Zipfian hot-key reads, read-mostly. Each
// cell drives the same seeded request stream through one FE session
// with the cache off and on, and reports throughput, latency
// percentiles and the hit rate. The acceptance cell is the s=1.1
// read-only profile: ≥5x throughput and a lower p99, because a hit
// skips both network legs (client→PoA and PoA→SE) entirely.
func runE22(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E22", "FE read cache: hot-key (Zipfian) throughput and tail latency vs read-through")

	subs, ops := 200, 2400
	if !opts.Quick {
		subs, ops = 500, 8000
	}

	type cellCfg struct {
		dist     workload.KeyDist
		writePct int
	}
	cells := []cellCfg{
		{workload.Uniform{}, 0},
		{workload.Zipfian{S: 1.1}, 0},
		{workload.Zipfian{S: 1.1}, 10},
	}

	rep.AddRow("profile", "writes", "cache", "ops/s", "p50", "p99", "hit-rate")
	type measured struct{ opsPerSec, p50, p99, hitRate float64 }
	results := make(map[string]measured)

	for _, cell := range cells {
		for _, cached := range []bool{false, true} {
			m, err := e22Cell(ctx, opts, subs, ops, cell.dist, cell.writePct, cached)
			if err != nil {
				return nil, fmt.Errorf("e22: %s writes=%d%% cache=%t: %w",
					cell.dist.Name(), cell.writePct, cached, err)
			}
			label := "off"
			hit := "n/a"
			if cached {
				label = "on"
				hit = fmt.Sprintf("%.1f%%", 100*m.hitRate)
			}
			rep.AddRow(cell.dist.Name(), fmt.Sprintf("%d%%", cell.writePct), label,
				fmt.Sprintf("%.0f", m.opsPerSec),
				(time.Duration(m.p50) * time.Nanosecond).Round(100*time.Nanosecond).String(),
				(time.Duration(m.p99) * time.Nanosecond).Round(time.Microsecond).String(),
				hit)
			results[fmt.Sprintf("%s/%d/%t", cell.dist.Name(), cell.writePct, cached)] = m
		}
	}

	hot := results["zipf-s1.10/0/true"]
	cold := results["zipf-s1.10/0/false"]
	rep.Check("cached Zipfian read throughput ≥5x read-through",
		cold.opsPerSec > 0 && hot.opsPerSec >= 5*cold.opsPerSec)
	rep.Check("cached Zipfian p99 below read-through p99", hot.p99 < cold.p99)
	rep.Check("hot-key hit rate ≥90%", hot.hitRate >= 0.9)
	mixedHot := results["zipf-s1.10/10/true"]
	mixedCold := results["zipf-s1.10/10/false"]
	rep.Check("cache still wins under the 10%-write mix",
		mixedHot.opsPerSec > mixedCold.opsPerSec)
	rep.Note("one FE session at the home PoA; a hit costs a sharded-LRU probe in-process, a miss pays client→PoA→SE; writes ride the master path and write through the cache")
	rep.Note("network scale ~10x compressed (local one-way %v); the paper-scale gap is larger, not smaller", netConfig(opts).Local.Latency)
	return rep, nil
}

// e22Cell drives one seeded request stream and measures it.
func e22Cell(ctx context.Context, opts Options, subs, ops int,
	dist workload.KeyDist, writePct int, cached bool) (struct{ opsPerSec, p50, p99, hitRate float64 }, error) {
	var out struct{ opsPerSec, p50, p99, hitRate float64 }
	net, u, profiles, err := buildUDR(opts, subs, func(cfg *core.Config) {
		cfg.FECache = cached
		cfg.FECacheSlaveLB = cached
	})
	if err != nil {
		return out, err
	}
	defer u.Stop()

	site := u.Sites()[0]
	sess := core.NewSession(net, simnet.MakeAddr(site, "e22-fe"), site, core.PolicyFE)
	if cached {
		sess.AttachCache(u.PoA(site).Cache())
	}
	r := rand.New(rand.NewSource(opts.Seed + 22))
	pick := dist.Picker(r, len(profiles))

	lat := make([]float64, 0, ops)
	start := time.Now()
	for i := 0; i < ops; i++ {
		p := profiles[pick()]
		var err error
		t0 := time.Now()
		if writePct > 0 && i%100 < writePct {
			_, err = sess.Exec(ctx, core.ExecReq{
				Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
				Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
					Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{"e22"},
				}}}},
			})
		} else {
			_, err = sess.Exec(ctx, core.ExecReq{
				Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
				Ops:      []se.TxnOp{{Kind: se.TxnGet}},
			})
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds()))
		if err != nil {
			return out, err
		}
	}
	elapsed := time.Since(start)

	sort.Float64s(lat)
	out.opsPerSec = float64(ops) / elapsed.Seconds()
	out.p50 = lat[len(lat)*50/100]
	out.p99 = lat[len(lat)*99/100]
	if cached {
		for _, cs := range u.CacheStats() {
			if cs.Site == site && cs.Hits+cs.Misses > 0 {
				out.hitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
			}
		}
	}
	return out, nil
}
