package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func init() {
	register("E17", "Engine concurrency: lock-striped read/write scaling; identity index vs full scan",
		"§2.3, §3.4 (perf extension)", runE17)
}

// runE17 measures the storage-engine properties the lock-striped MVCC
// refactor is for. Part A drives one partition store with increasing
// client-goroutine counts and reports read, commit and mixed
// throughput: reads take only a shard read-lock and return shared
// copy-on-write versions, so they scale with cores, while commits
// stay totally ordered behind the CSN lock by design. Part B compares
// the §3.4 identity-search fallback on two storage elements — one
// resolving FindReq through the secondary identity index, one forced
// onto the legacy full partition scan — at the same population.
func runE17(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E17", "Engine concurrency: lock-striped read/write scaling; identity index vs full scan")

	rows, perG := 5000, 50000
	gorCounts := []int{1, 2, 4, 8}
	findRows, findOps := 4000, 300
	if opts.Quick {
		rows, perG = 800, 8000
		gorCounts = []int{1, 4}
		findRows, findOps = 600, 120
	}

	// --- Part A: throughput vs goroutines on one store ---------------
	st := store.New("e17")
	st.SetIndexedAttrs(subscriber.IdentityAttrs...)
	keys := make([]string, rows)
	for i := range keys {
		keys[i] = fmt.Sprintf("sub-%06d", i)
		txn := st.Begin(store.ReadCommitted)
		txn.Put(keys[i], store.Entry{
			subscriber.AttrIMSI: {fmt.Sprintf("21401%09d", i)},
			subscriber.AttrArea: {"a0"},
		})
		if _, err := txn.Commit(); err != nil {
			return nil, err
		}
	}

	rep.AddRow("— part A: one partition store, ops split across goroutines —")
	rep.AddRow("goroutines", "reads/s", "commits/s", "mixed 90/10 ops/s")
	var readTput []float64
	commitsBefore := st.CSN()
	totalCommits := uint64(0)
	for _, g := range gorCounts {
		rt := e17Run(g, perG, func(worker, i int) {
			st.GetCommitted(keys[(worker*7919+i)%rows])
		})
		wt := e17Run(g, perG/10, func(worker, i int) {
			txn := st.Begin(store.ReadCommitted)
			k := (worker*104729 + i) % rows
			txn.Put(keys[k], store.Entry{
				subscriber.AttrIMSI: {fmt.Sprintf("21401%09d", k)},
				subscriber.AttrArea: {fmt.Sprintf("a%d", i&7)},
			})
			txn.Commit()
		})
		totalCommits += uint64(g * (perG / 10))
		mt := e17Run(g, perG, func(worker, i int) {
			k := (worker*31 + i) % rows
			if i%10 == 9 {
				txn := st.Begin(store.ReadCommitted)
				txn.Modify(keys[k], store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{"m"}})
				txn.Commit()
			} else {
				st.GetCommitted(keys[k])
			}
		})
		totalCommits += uint64(g * perG / 10)
		readTput = append(readTput, rt)
		rep.AddRow(fmt.Sprint(g), e17Ops(rt), e17Ops(wt), e17Ops(mt))
	}
	// CSN total order survives arbitrary interleaving: every commit
	// got exactly one sequence slot.
	rep.Check("CSN total order preserved under concurrent commits",
		st.CSN() == commitsBefore+totalCommits)
	// Quick mode runs on arbitrary CI hardware, often 2 vCPUs under
	// the race detector, where the 1-vs-N wall-clock ratio is noisy;
	// the bar only rejects a true global-lock collapse there. Full
	// size keeps the tighter bar.
	collapseBar := 0.45
	if opts.Quick {
		collapseBar = 0.2
	}
	rep.Check("parallel reads do not collapse under fan-in",
		readTput[len(readTput)-1] >= collapseBar*readTput[0])
	rep.Check("identity index consistent after concurrent writes", e17IndexConsistent(st))

	// --- Part B: identity find — secondary index vs legacy scan ------
	net := simnet.New(simnet.FastConfig())
	elIdx := se.New(net, se.Config{ID: "se-idx", Site: "eu"})
	elScan := se.New(net, se.Config{ID: "se-scan", Site: "eu", LegacyFindScan: true})
	defer elIdx.Stop()
	defer elScan.Stop()
	prIdx, err := elIdx.AddReplica("p", store.Master)
	if err != nil {
		return nil, err
	}
	prScan, err := elScan.AddReplica("p", store.Master)
	if err != nil {
		return nil, err
	}
	gen := subscriber.NewGenerator("eu")
	profiles := make([]*subscriber.Profile, findRows)
	for i := range profiles {
		profiles[i] = gen.Profile(i)
		entry := profiles[i].ToEntry()
		for _, s := range []*store.Store{prIdx.Store, prScan.Store} {
			txn := s.Begin(store.ReadCommitted)
			txn.Put(profiles[i].ID, entry)
			if _, err := txn.Commit(); err != nil {
				return nil, err
			}
		}
	}

	client := simnet.MakeAddr("eu", "e17-client")
	find := func(el *se.Element, id subscriber.Identity) (se.FindResp, error) {
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		raw, err := net.Call(cctx, client, el.Addr(), se.FindReq{Identity: id})
		if err != nil {
			return se.FindResp{}, err
		}
		return raw.(se.FindResp), nil
	}

	// Same answers on hits, multi-valued identities and misses.
	agree := true
	for _, id := range append(profiles[findRows/2].Identities(),
		subscriber.Identity{Type: subscriber.MSISDN, Value: "nope"}) {
		a, err := find(elIdx, id)
		if err != nil {
			return nil, err
		}
		b, err := find(elScan, id)
		if err != nil {
			return nil, err
		}
		if a != b {
			agree = false
		}
	}
	rep.Check("indexed and scan resolution agree", agree)

	measure := func(el *se.Element) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < findOps; i++ {
			p := profiles[(i*37)%findRows]
			if _, err := find(el, subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal}); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(findOps), nil
	}
	scanLat, err := measure(elScan)
	if err != nil {
		return nil, err
	}
	idxLat, err := measure(elIdx)
	if err != nil {
		return nil, err
	}
	rep.AddRow("— part B: FindReq resolution at one storage element —")
	rep.AddRow("rows", "full scan /find", "identity index /find", "speedup")
	rep.AddRow(fmt.Sprint(findRows), scanLat.String(), idxLat.String(),
		fmt.Sprintf("%.1fx", float64(scanLat)/float64(idxLat)))
	rep.Check("identity index beats full scan", idxLat < scanLat)
	rep.Note("scan cost grows O(rows) per element; the index is O(log n) — E9's cached-locator miss fan-out pays one of these per queried SE")
	return rep, nil
}

// e17Run spreads gors goroutines over perG calls of fn each and
// returns the aggregate throughput in ops/s.
func e17Run(gors, perG int, fn func(worker, i int)) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < gors; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
	return float64(gors*perG) / time.Since(start).Seconds()
}

// e17Ops formats a throughput.
func e17Ops(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// e17IndexConsistent verifies every live row's indexed identity values
// resolve back to exactly that row. Rows are collected first: index
// lookups must not run inside the iteration callback (store
// no-reentrancy rule).
func e17IndexConsistent(st *store.Store) bool {
	type pair struct{ key, attr, val string }
	var pairs []pair
	attrs := st.IndexedAttrs()
	st.ForEach(func(key string, e store.Entry, _ store.Meta) bool {
		for _, attr := range attrs {
			for _, v := range e[attr] {
				pairs = append(pairs, pair{key, attr, v})
			}
		}
		return true
	})
	for _, p := range pairs {
		if got, found := st.LookupByAttr(p.attr, p.val); !found || got != p.key {
			return false
		}
	}
	return true
}
