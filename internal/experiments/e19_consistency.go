package experiments

import (
	"context"
	"fmt"
	"os"

	"repro/internal/consistency"
	"repro/internal/replication"
)

func init() {
	register("E19", "Consistency contract under chaos: linearizability, session guarantees, convergence",
		"§3.2, §3.3, §4.1, §5", runE19)
}

// runE19 turns the paper's CAP positioning into a falsifiable
// contract. A seeded chaos harness (internal/consistency) drives
// randomized read/modify/CAS/delete traffic through the FE→PoA→SE
// path while a fault schedule injects partitions, failovers,
// crash-restarts (real WAL recovery) and anti-entropy repairs; a
// Wing&Gong checker then validates the recorded history per key.
//
// The grid is the durability knob of §5:
//
//   - async (the paper's default): acknowledged writes committed on an
//     isolated master are lost at failover — the checker must SEE that
//     as linearizability violations (PA/EL, the §3.3.1 gap priced);
//   - quorum: an acknowledged write is on the master plus a majority
//     of copies, and failover promotes the most-caught-up live slave,
//     so the master path must be linearizable too — at median-replica
//     commit latency instead of sync-all's max (E23 prices that);
//   - sync-all: every acknowledged write is on every replica before
//     the commit returns, so the master path must be linearizable no
//     matter what the schedule did (PC/EC).
//
// In both modes replicas must reconverge after the final heal+repair,
// and slave reads carry a measured staleness bound (§3.3.2's "fast but
// possibly stale" made quantitative). A final determinism check reruns
// one seed and requires a byte-identical schedule and history: every
// failure is its own reproducer.
func runE19(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E19", "Consistency contract under chaos: linearizability, session guarantees, convergence")

	seeds := []int64{opts.Seed, opts.Seed + 2, opts.Seed + 5}
	if opts.Quick {
		seeds = seeds[:1]
	}

	run := func(seed int64, d replication.Durability, migrations bool) (*consistency.Result, error) {
		walDir, err := os.MkdirTemp("", "e19-wal")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(walDir)
		cfg := consistency.DefaultConfig(seed)
		cfg.Ops = 400
		cfg.FaultMin, cfg.FaultMax = 6, 14
		cfg.Durability = d
		cfg.WALDir = walDir
		cfg.Migrations = migrations
		return consistency.Run(ctx, cfg)
	}

	type agg struct {
		ops, faults, linViol        int
		slaveReads, stale, maxStale int
		converged                   bool
	}
	// runMode aggregates over the seeds and keeps the first seed's
	// result so the determinism probe can compare against it without
	// paying for an extra run.
	runMode := func(d replication.Durability, migrations bool) (agg, *consistency.Result, error) {
		out := agg{converged: true}
		var first *consistency.Result
		for _, seed := range seeds {
			res, err := run(seed, d, migrations)
			if err != nil {
				return out, nil, fmt.Errorf("e19: durability=%s seed=%d: %w", d, seed, err)
			}
			if first == nil {
				first = res
			}
			out.ops += res.History.Len()
			out.faults += len(res.Schedule.Events)
			out.linViol += res.LinViolations
			out.slaveReads += res.Session.SlaveReads
			out.stale += res.Session.StaleReads
			if res.Session.MaxStaleness > out.maxStale {
				out.maxStale = res.Session.MaxStaleness
			}
			out.converged = out.converged && res.Converged
		}
		return out, first, nil
	}

	async, asyncFirst, err := runMode(replication.Async, false)
	if err != nil {
		return nil, err
	}
	quorum, _, err := runMode(replication.Quorum, false)
	if err != nil {
		return nil, err
	}
	syncAll, _, err := runMode(replication.SyncAll, false)
	if err != nil {
		return nil, err
	}
	// Migration profile: the same sync-all contract must hold while
	// live partition migrations interleave with partitions, failovers
	// and crash-restarts (PR-5's acceptance bar).
	syncMig, _, err := runMode(replication.SyncAll, true)
	if err != nil {
		return nil, err
	}

	// Determinism probe: rerun the first async seed — schedule and
	// history must be byte-identical with the run already measured.
	detB, err := run(seeds[0], replication.Async, false)
	if err != nil {
		return nil, err
	}
	deterministic := asyncFirst.Schedule.String() == detB.Schedule.String() &&
		asyncFirst.History.String() == detB.History.String()

	rep.AddRow("durability", "ops", "fault events", "lin violations", "slave reads", "stale reads", "max staleness", "reconverged")
	rep.AddRow("async", fmt.Sprint(async.ops), fmt.Sprint(async.faults),
		fmt.Sprint(async.linViol), fmt.Sprint(async.slaveReads),
		fmt.Sprint(async.stale), fmt.Sprint(async.maxStale), fmt.Sprint(async.converged))
	rep.AddRow("quorum", fmt.Sprint(quorum.ops), fmt.Sprint(quorum.faults),
		fmt.Sprint(quorum.linViol), fmt.Sprint(quorum.slaveReads),
		fmt.Sprint(quorum.stale), fmt.Sprint(quorum.maxStale), fmt.Sprint(quorum.converged))
	rep.AddRow("sync-all", fmt.Sprint(syncAll.ops), fmt.Sprint(syncAll.faults),
		fmt.Sprint(syncAll.linViol), fmt.Sprint(syncAll.slaveReads),
		fmt.Sprint(syncAll.stale), fmt.Sprint(syncAll.maxStale), fmt.Sprint(syncAll.converged))
	rep.AddRow("sync-all+migrate", fmt.Sprint(syncMig.ops), fmt.Sprint(syncMig.faults),
		fmt.Sprint(syncMig.linViol), fmt.Sprint(syncMig.slaveReads),
		fmt.Sprint(syncMig.stale), fmt.Sprint(syncMig.maxStale), fmt.Sprint(syncMig.converged))

	rep.Check("sync-all keeps the master path linearizable under chaos", syncAll.linViol == 0)
	rep.Check("quorum keeps the master path linearizable (failover promotes the most-caught-up acked slave)",
		quorum.linViol == 0)
	rep.Check("async loses acknowledged writes at failover (the paper's §3.3.1 gap, detected)",
		async.linViol > 0)
	rep.Check("replicas reconverge after heal + repair in every mode",
		async.converged && quorum.converged && syncAll.converged)
	rep.Check("live migrations preserve linearizability and convergence under sync-all",
		syncMig.linViol == 0 && syncMig.converged)
	rep.Check("slave reads were driven and measured", async.slaveReads+syncAll.slaveReads > 0)
	rep.Check("same seed reproduces a byte-identical schedule and history", deterministic)

	rep.Note("fault-schedule grammar and the checked models: EXPERIMENTS.md E19 / DESIGN.md Verification")
	rep.Note("each run: %d ops over 24 subscribers, 6 clients, 3 sites; seeds %v", 400, seeds)
	return rep, nil
}
