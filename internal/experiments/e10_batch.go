package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/failure"
	"repro/internal/ps"
	"repro/internal/subscriber"
)

func init() {
	register("E10", "Batch provisioning vs a 30-second backbone glitch",
		"§3.3, §4.1", runE10)
}

// runE10 reproduces §4.1's batch-provisioning hazard: "when using
// batched provisioning, a network glitch as short as 30 seconds may
// cause a batch that's been running for hours to fail", leaving
// failed items for manual re-application. Time is compressed: the
// batch paces one transaction per interval and the glitch covers a
// middle slice of the run.
func runE10(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E10", "Batch provisioning vs a 30-second backbone glitch")
	batchSize := 120
	interval := time.Millisecond
	if opts.Quick {
		batchSize = 60
		interval = 500 * time.Microsecond
	}
	// Provisioning items include remote locator updates, so each
	// takes several backbone round trips; the glitch is sized in
	// wall-clock terms generous enough to cover a run of items.
	glitchStart := time.Duration(batchSize/3) * interval
	glitchLen := time.Duration(batchSize/2) * interval

	run := func(withGlitch, stopOnError bool) (ps.BatchResult, error) {
		net, u, _, err := buildUDR(opts, 0)
		if err != nil {
			return ps.BatchResult{}, err
		}
		defer u.Stop()
		site := u.Sites()[0]
		system := ps.NewWithSession(site, psSession(net, site))

		gen := subscriber.NewGenerator(u.Sites()...)
		profiles := make([]*subscriber.Profile, batchSize)
		for i := range profiles {
			profiles[i] = gen.Profile(i)
		}

		var glitchDone chan struct{}
		if withGlitch {
			glitchDone = make(chan struct{})
			time.AfterFunc(glitchStart, func() {
				defer close(glitchDone)
				failure.Glitch(ctx, net, []string{site}, glitchLen)
			})
		}
		res := system.RunBatch(ctx, profiles, interval, stopOnError)
		if glitchDone != nil {
			<-glitchDone
		}
		// Give the network a moment to heal before teardown.
		net.Heal()
		return res, nil
	}

	rep.AddRow("scenario", "completed", "failed", "aborted", "manual interventions")
	report := func(name string, r ps.BatchResult) {
		rep.AddRow(name, fmt.Sprintf("%d/%d", r.Succeeded, r.Total),
			fmt.Sprint(r.Failed), fmt.Sprint(r.Aborted), fmt.Sprint(r.Failed))
	}

	baseline, err := run(false, true)
	if err != nil {
		return nil, err
	}
	report("no glitch, stop-on-error", baseline)
	rep.Check("baseline batch completes fully", baseline.Succeeded == baseline.Total && !baseline.Aborted)

	strict, err := run(true, true)
	if err != nil {
		return nil, err
	}
	report("glitch, stop-on-error", strict)
	rep.Check("glitch aborts the strict batch", strict.Aborted && strict.Succeeded < strict.Total)

	lenient, err := run(true, false)
	if err != nil {
		return nil, err
	}
	report("glitch, continue-on-error", lenient)
	rep.Check("lenient batch loses the glitch window's remote items",
		lenient.Failed > 0 && lenient.Succeeded > 0 && !lenient.Aborted)
	rep.Check("every failed item is a manual intervention", lenient.Failed > 0)

	rep.Note("glitch covers ~%d%% of the batch window; during it only locally-mastered regions accept provisioning writes", int(100*float64(glitchLen)/(float64(batchSize)*float64(interval))))
	rep.Note("paper §4.1: 'at the very best, if the batch is able to finish the provider needs to send someone to check what parts of the batch failed and apply those parts manually'")
	return rep, nil
}
