package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E22", "E23", "E24"}
	if len(ids) != len(want) {
		t.Fatalf("registered %v, want %v", ids, want)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("order: %v", ids)
		}
		title, source, ok := Describe(id)
		if !ok || title == "" || source == "" {
			t.Fatalf("describe(%s) = %q %q %v", id, title, source, ok)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run(context.Background(), "E99", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// runQuick runs one experiment in quick mode and asserts that every
// claim-shape check passed.
func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Run(ctx, id, Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	for name, ok := range rep.Checks() {
		if !ok {
			t.Errorf("%s check failed: %s\n%s", id, name, rep)
		}
	}
	if !rep.Passed() {
		t.Fatalf("%s did not pass:\n%s", id, rep)
	}
	if len(rep.Rows()) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return rep
}

func TestE1Resilience(t *testing.T)    { runQuick(t, "E1") }
func TestE2Provisioning(t *testing.T)  { runQuick(t, "E2") }
func TestE3Partition(t *testing.T)     { runQuick(t, "E3") }
func TestE4Replication(t *testing.T)   { runQuick(t, "E4") }
func TestE5SlaveReads(t *testing.T)    { runQuick(t, "E5") }
func TestE6PSReads(t *testing.T)       { runQuick(t, "E6") }
func TestE7Capacity(t *testing.T)      { runQuick(t, "E7") }
func TestE8Locator(t *testing.T)       { runQuick(t, "E8") }
func TestE9ScaleOut(t *testing.T)      { runQuick(t, "E9") }
func TestE10Batch(t *testing.T)        { runQuick(t, "E10") }
func TestE11MultiMaster(t *testing.T)  { runQuick(t, "E11") }
func TestE12Durability(t *testing.T)   { runQuick(t, "E12") }
func TestE13Latency(t *testing.T)      { runQuick(t, "E13") }
func TestE14FiveNines(t *testing.T)    { runQuick(t, "E14") }
func TestE15ProcedureOps(t *testing.T) { runQuick(t, "E15") }
func TestE16AntiEntropy(t *testing.T)  { runQuick(t, "E16") }
func TestE17Concurrency(t *testing.T)  { runQuick(t, "E17") }
func TestE19Consistency(t *testing.T)  { runQuick(t, "E19") }
func TestE20Rebalance(t *testing.T)    { runQuick(t, "E20") }
func TestE22FECache(t *testing.T)      { runQuick(t, "E22") }
func TestE23Quorum(t *testing.T)       { runQuick(t, "E23") }
func TestE24Checkpoint(t *testing.T)   { runQuick(t, "E24") }

func TestReportRendering(t *testing.T) {
	rep := NewReport("EX", "test report")
	rep.AddRow("col1", "col2")
	rep.AddRow("a", "bb")
	rep.Note("a note")
	rep.Check("something", true)
	s := rep.String()
	for _, want := range []string{"EX", "test report", "col1", "a note", "PASS"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	rep.Check("bad", false)
	if rep.Passed() {
		t.Fatal("report with failing check passed")
	}
	if !strings.Contains(rep.String(), "FAIL") {
		t.Fatal("FAIL not rendered")
	}
}

func TestReportNoChecksNotPassed(t *testing.T) {
	rep := NewReport("EX", "empty")
	if rep.Passed() {
		t.Fatal("empty report should not pass")
	}
}
