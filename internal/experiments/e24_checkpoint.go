package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/wal"
)

func init() {
	register("E24", "Checkpointing at scale: bytes/subscriber, recovery time, commit stall",
		"§2.2, §3.1", runE24)
}

// runE24 measures what PR 9's incremental checkpointer buys at the
// population the paper sizes a storage element for (§2.2: elements in
// the millions-of-subscribers range, §3.1: periodic save to disk):
//
//   - resident bytes per subscriber after attribute interning and
//     compact entry layout — the memory side of "10M subscribers in
//     one element";
//   - checkpoint duration, and commit latency WHILE the image is
//     streaming — the checkpoint must not stall the write path;
//   - startup recovery time: image load plus replay of only the log
//     suffix above the checkpoint watermark, never the whole history.
//
// Full runs provision 1M subscribers (override with UDR_E24_SUBS up
// to 10M when the machine has the memory); quick runs compress to
// 20k so the same code path rides the test suite.
func runE24(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E24", "Checkpointing at scale: bytes/subscriber, recovery time, commit stall")

	subs := 1_000_000
	if opts.Quick {
		subs = 20_000
	} else if env := os.Getenv("UDR_E24_SUBS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n >= 1000 && n <= 10_000_000 {
			subs = n
		}
	}
	const batch = 1000 // rows per provisioning txn

	dir, err := os.MkdirTemp("", "udr-e24-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Resident footprint: heap in use before and after provisioning,
	// with the GC quiesced on both sides so the delta is the store.
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	st := store.New("e24")
	log, err := wal.Open(dir, wal.Periodic)
	if err != nil {
		return nil, err
	}
	defer log.Close()
	st.SetCommitHook(log.Append)

	provStart := time.Now()
	for i := 0; i < subs; i += batch {
		txn := st.Begin(store.ReadCommitted)
		for j := i; j < i+batch && j < subs; j++ {
			txn.Put(fmt.Sprintf("imsi-%09d", j), store.Entry{
				"objectClass": {"subscriber"},
				"imsi":        {fmt.Sprintf("24001%09d", j)},
				"msisdn":      {fmt.Sprintf("4670%08d", j)},
				"cell":        {fmt.Sprintf("cell-%04d", j%4096)},
			})
		}
		if _, err := txn.Commit(); err != nil {
			return nil, err
		}
	}
	if err := log.Sync(); err != nil {
		return nil, err
	}
	provDur := time.Since(provStart)

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	bytesPerSub := float64(int64(m1.HeapInuse)-int64(m0.HeapInuse)) / float64(subs)

	// Commit latency with no checkpoint running — the stall baseline.
	writeOne := func(i int, hist *metrics.Histogram) error {
		txn := st.Begin(store.ReadCommitted)
		txn.Put(fmt.Sprintf("imsi-%09d", i%subs), store.Entry{
			"objectClass": {"subscriber"},
			"imsi":        {fmt.Sprintf("24001%09d", i%subs)},
			"msisdn":      {fmt.Sprintf("4670%08d", i%subs)},
			"cell":        {fmt.Sprintf("cell-%04d", i%4096)},
		})
		start := time.Now()
		_, err := txn.Commit()
		hist.Record(time.Since(start))
		return err
	}
	var baseline metrics.Histogram
	for i := 0; i < 2000; i++ {
		if err := writeOne(i, &baseline); err != nil {
			return nil, err
		}
	}

	// Checkpoint with a writer hammering the same element: the image
	// streams off immutable entries while commits keep flowing, so
	// the writer's latency during the checkpoint IS the stall cost.
	var during metrics.Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := writeOne(i, &during); err != nil {
				writerErr = err
				return
			}
		}
	}()
	ckptStart := time.Now()
	ckptErr := log.Checkpoint(st)
	ckptDur := time.Since(ckptStart)
	close(stop)
	wg.Wait()
	if ckptErr != nil {
		return nil, ckptErr
	}
	if writerErr != nil {
		return nil, writerErr
	}
	cs := log.CheckpointStats()

	// Post-checkpoint traffic: the only records recovery may replay.
	suffix := 500
	for i := 0; i < suffix; i++ {
		txn := st.Begin(store.ReadCommitted)
		txn.Modify(fmt.Sprintf("imsi-%09d", i), store.Mod{
			Kind: store.ModReplace, Attr: "cell", Vals: []string{"cell-moved"},
		})
		if _, err := txn.Commit(); err != nil {
			return nil, err
		}
	}
	if err := log.Sync(); err != nil {
		return nil, err
	}
	if err := log.Close(); err != nil {
		return nil, err
	}

	// Crash-restart: recover a fresh store from image + log suffix.
	recovered := store.New("e24")
	recStart := time.Now()
	rst, err := wal.RecoverWithStats(dir, recovered)
	if err != nil {
		return nil, err
	}
	recDur := time.Since(recStart)

	b := baseline.Snapshot()
	d := during.Snapshot()
	rep.AddRow("metric", "value")
	rep.AddRow("subscribers", fmt.Sprint(subs))
	rep.AddRow("provisioning", provDur.Round(time.Millisecond).String())
	rep.AddRow("resident bytes/subscriber", fmt.Sprintf("%.0f", bytesPerSub))
	rep.AddRow("checkpoint duration", ckptDur.Round(time.Millisecond).String())
	rep.AddRow("checkpoint image bytes", fmt.Sprint(cs.LastBytes))
	rep.AddRow("commit p50/p99 (no checkpoint)", fmt.Sprintf("%s / %s", b.P50, b.P99))
	rep.AddRow("commit p50/p99 (during checkpoint)", fmt.Sprintf("%s / %s", d.P50, d.P99))
	rep.AddRow("commits completed during checkpoint", fmt.Sprint(during.Count()))
	rep.AddRow("startup recovery", recDur.Round(time.Millisecond).String())
	rep.AddRow("recovery replayed/skipped", fmt.Sprintf("%d / %d", rst.Replayed, rst.Skipped))
	rep.AddRow("recovery image rows", fmt.Sprint(rst.SnapshotRows))

	// Claim-shape checks.
	rep.Check("image covers the full population", rst.SnapshotRows >= int64(subs))
	rep.Check("recovery replays only the post-checkpoint suffix",
		rst.Replayed >= suffix && rst.Replayed <= suffix+int(during.Count()))
	rep.Check("no pre-checkpoint record re-read", rst.Skipped == 0)
	rep.Check("recovered element matches (rows + CSN)",
		recovered.Len() == st.Len() && recovered.CSN() == st.CSN())
	rep.Check("commits flow during checkpoint", during.Count() > 0)
	// Generous absolute bound: the point is "no multi-second freeze
	// while the image streams", not a tight latency SLO (commit work
	// here is in-memory + buffered append; a stalling design blocks
	// for the full image write).
	rep.Check("commit p99 during checkpoint stays bounded",
		d.P99 < 250*time.Millisecond && d.P99 < ckptDur)
	rep.Check("resident layout stays compact", bytesPerSub > 0 && bytesPerSub < 4096)

	rep.Note("scale: %d subscribers (full runs default to 1M; UDR_E24_SUBS overrides up to 10M)", subs)
	rep.Note("commit-stall p99 during checkpoint: %s vs %s baseline over %d commits",
		d.P99, b.P99, during.Count())
	rep.Note("recovery is image + suffix: %d rows loaded, %d records replayed, %d skipped in %s",
		rst.SnapshotRows, rst.Replayed, rst.Skipped, recDur.Round(time.Millisecond))
	return rep, nil
}
