package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/replication"
	"repro/internal/simnet"
	"repro/internal/store"
)

func init() {
	register("E23", "Quorum commits over WAN profiles: majority latency, not slowest-replica latency",
		"§3.3.1, §4.2, §5", runE23)
}

// runE23 prices the durability spectrum the quorum level opens between
// the paper's async default (§3.3.1) and sync-all (§5): a commit that
// waits for k of n replica acknowledgements pays the k-th fastest
// replica's RTT, not the slowest one's. The grid crosses commit
// durability (async / quorum-majority / sync-all) with WAN profiles
// (uniform metro, uniform continental, and a mixed topology with one
// intercontinental straggler replica), then cuts one replica off to
// show the availability side: quorum keeps committing at full latency
// where sync-all refuses every commit.
//
// All figures are at the simulator's 10x compressed time scale (a
// real-world 30ms one-way becomes 3ms here); the replica-RTT columns
// carry the same scale, so the ratios are scale-free.
func runE23(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E23", "Quorum commits over WAN profiles: majority latency, not slowest-replica latency")
	ops := 120
	if opts.Quick {
		ops = 40
	}

	topos := []struct {
		name string
		spec simnet.WANSpec
	}{
		{"metro", simnet.WANSpec{Default: simnet.Metro}},
		{"continental", simnet.WANSpec{Default: simnet.Continental}},
		{"mixed (one intercont. replica)", simnet.WANSpec{
			Default:   simnet.Continental,
			Overrides: []simnet.WANPair{{A: "eu", B: "apac", Profile: simnet.Intercontinental}},
		}},
	}
	durabilities := []replication.Durability{replication.Async, replication.Quorum, replication.SyncAll}

	rep.AddRow("WAN profile", "durability", "commit p50", "commit p95", "commits/s", "median RTT", "max RTT")
	for _, topo := range topos {
		p50 := map[replication.Durability]time.Duration{}
		var rtts []time.Duration
		for _, d := range durabilities {
			rig, err := buildE23Rig(opts.Seed, topo.spec)
			if err != nil {
				return nil, err
			}
			if d == replication.Quorum {
				rig.master.SetQuorumPolicy(replication.QuorumPolicy{Mode: replication.QuorumMajority})
			}
			rig.master.SetDurability(d)

			// Exact percentiles: the RTT-ratio checks are too tight for
			// the log-bucketed metrics histogram (bucket boundaries
			// round a 600µs commit up to 1.024ms).
			lats := make([]time.Duration, 0, ops)
			begin := time.Now()
			for i := 0; i < ops; i++ {
				start := time.Now()
				if err := rig.commit(fmt.Sprintf("sub-%06d", i)); err != nil {
					rig.stop()
					return nil, fmt.Errorf("e23: %s/%s commit %d: %w", topo.name, d, i, err)
				}
				lats = append(lats, time.Since(start))
			}
			elapsed := time.Since(begin)
			rtts = rig.net.ReplicaRTTs("eu", "us", "apac")
			rig.stop()

			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p95 := lats[len(lats)*95/100]
			p50[d] = lats[len(lats)/2]
			rep.AddRow(topo.name, d.String(), p50[d].String(), p95.String(),
				fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()),
				rtts[(len(rtts)-1)/2].String(), rtts[len(rtts)-1].String())
		}

		medianRTT := rtts[(len(rtts)-1)/2]
		maxRTT := rtts[len(rtts)-1]
		rep.Check(fmt.Sprintf("%s: quorum commit p50 within 1.5x the median replica RTT", topo.name),
			p50[replication.Quorum] <= medianRTT*3/2)
		rep.Check(fmt.Sprintf("%s: sync-all commit p50 pays at least the slowest replica RTT", topo.name),
			p50[replication.SyncAll] >= maxRTT)
		rep.Check(fmt.Sprintf("%s: async stays below quorum (it waits for nothing)", topo.name),
			p50[replication.Async] < p50[replication.Quorum])
		if len(topo.spec.Overrides) > 0 {
			rep.Check("mixed topology: quorum is decoupled from the straggler (p50 below max replica RTT)",
				p50[replication.Quorum] < maxRTT)
		}
	}

	// Availability cut: the intercontinental replica drops off the
	// mixed topology. Majority quorum (master + nearest slave) keeps
	// acknowledging durable commits; sync-all refuses every one (the
	// records stay applied locally, per the durability contract).
	const burst = 10
	downOK := map[replication.Durability]int{}
	for _, d := range []replication.Durability{replication.Quorum, replication.SyncAll} {
		rig, err := buildE23Rig(opts.Seed, topos[2].spec)
		if err != nil {
			return nil, err
		}
		rig.master.SetDurability(d)
		rig.net.Partition([]string{"apac"})
		var lastErr error
		for i := 0; i < burst; i++ {
			if err := rig.commit(fmt.Sprintf("down-%03d", i)); err == nil {
				downOK[d]++
			} else if !errors.Is(err, replication.ErrDurability) {
				rig.stop()
				return nil, fmt.Errorf("e23: peer-down %s commit %d: %w", d, i, err)
			} else {
				lastErr = err
			}
		}
		if d == replication.Quorum {
			// Every acknowledged commit must actually be quorum-durable.
			deadline := time.Now().Add(5 * time.Second)
			for rig.master.QuorumWatermark() < rig.master.Store().CSN() && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if rig.master.QuorumWatermark() < rig.master.Store().CSN() {
				rig.stop()
				return nil, fmt.Errorf("e23: quorum watermark stuck below CSN with a live majority")
			}
		}
		rep.AddRow(topos[2].name+" + replica down", d.String(),
			fmt.Sprintf("%d/%d acked", downOK[d], burst), "-", "-", "-", "-")
		rig.stop()
		_ = lastErr
	}
	rep.Check("quorum sustains durable commits with one replica down", downOK[replication.Quorum] == burst)
	rep.Check("sync-all stalls with one replica down (every commit refused)", downOK[replication.SyncAll] == 0)

	rep.Note("rig: one partition, master at eu with slaves at us and apac; %d commits per cell; latencies at the 10x compressed simulator scale", ops)
	rep.Note("quorum=majority of 3 copies: the commit returns on the first slave ack — the k-th fastest RTT, the E23 headline")
	return rep, nil
}

// e23Rig is a single-partition master/two-slave replication rig over a
// WAN-profiled network (replication-level, no PoA/FE path: the cell
// isolates the durability wait itself).
type e23Rig struct {
	net    *simnet.Network
	master *replication.Replica
	nodes  []*replication.Node
}

func buildE23Rig(seed int64, spec simnet.WANSpec) (*e23Rig, error) {
	cfg := simnet.FastConfig()
	cfg.Seed = seed
	net := simnet.New(cfg)
	for _, s := range []string{"eu", "us", "apac"} {
		net.AddSite(s)
	}
	if err := net.ApplyWAN(spec); err != nil {
		return nil, err
	}
	rig := &e23Rig{net: net}
	newNode := func(site, name string) *replication.Node {
		addr := simnet.MakeAddr(site, name)
		node := replication.NewNode(net, addr)
		net.Register(addr, func(ctx context.Context, from simnet.Addr, msg any) (any, error) {
			resp, handled, err := node.HandleMessage(ctx, from, msg)
			if !handled {
				return nil, fmt.Errorf("unhandled %T", msg)
			}
			return resp, err
		})
		rig.nodes = append(rig.nodes, node)
		return node
	}
	master := newNode("eu", "m")
	rig.master = master.AddReplica("p1", store.New("m"))
	var peers []simnet.Addr
	for _, site := range []string{"us", "apac"} {
		node := newNode(site, "s-"+site)
		ss := store.New("s-" + site)
		ss.SetRole(store.Slave)
		node.AddReplica("p1", ss)
		peers = append(peers, node.Addr())
	}
	rig.master.SetPeers(peers...)
	return rig, nil
}

func (r *e23Rig) commit(key string) error {
	txn := r.master.Store().Begin(store.ReadCommitted)
	txn.Put(key, store.Entry{"v": {key}})
	_, err := txn.Commit()
	return err
}

func (r *e23Rig) stop() {
	for _, n := range r.nodes {
		n.Stop()
	}
}
