package experiments

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func init() {
	register("E20", "Live partition migration: cost vs size and write rate, freeze window, abort safety",
		"§3.4.2, §3.5 (rebalancing extension)", runE20)
}

// runE20 measures what the paper's scale-out story leaves implicit:
// the cost of *re*-placing a partition under live signalling load.
// For each partition size × write rate × durability cell it migrates
// a loaded partition's master cross-site while paced writers hammer
// it, and reports rows shipped, catch-up records, the client-visible
// write-freeze window and the error/loss tally. An aborted migration
// (backbone cut mid-move) must leave the source authoritative.
func runE20(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E20", "Live partition migration: cost vs size and write rate, freeze window, abort safety")

	sizes := []int{40, 160}
	if !opts.Quick {
		sizes = []int{200, 800}
	}
	rep.AddRow("rows", "writers", "durability", "shipped", "catch-up", "freeze", "errors", "lost")

	var freezes []time.Duration
	var shippedBySize []int
	lostTotal := 0
	for _, rows := range sizes {
		for _, writers := range []int{0, 2} {
			for _, durability := range []replication.Durability{replication.Async, replication.SyncAll} {
				cell, err := migrateCell(ctx, opts, rows, writers, durability)
				if err != nil {
					return nil, fmt.Errorf("e20: rows=%d writers=%d durability=%s: %w", rows, writers, durability, err)
				}
				rep.AddRow(fmt.Sprint(rows), fmt.Sprint(writers), durability.String(),
					fmt.Sprint(cell.shipped), fmt.Sprint(cell.catchUp),
					cell.freeze.Round(10*time.Microsecond).String(),
					fmt.Sprint(cell.clientErrs), fmt.Sprint(cell.lost))
				freezes = append(freezes, cell.freeze)
				lostTotal += cell.lost
				if writers == 0 && durability == replication.Async {
					shippedBySize = append(shippedBySize, cell.shipped)
				}
			}
		}
	}

	rep.Check("zero lost acknowledged writes across every cutover", lostTotal == 0)
	boundOK := true
	for _, f := range freezes {
		if f > 500*time.Millisecond {
			boundOK = false
		}
	}
	rep.Check("write-freeze window bounded", boundOK)
	rep.Check("migration cost grows with partition size",
		len(shippedBySize) == 2 && shippedBySize[1] > shippedBySize[0])

	// Abort safety: cut the backbone under the target mid-move; the
	// source must stay authoritative and keep serving writes.
	abortOK, err := migrateAbortCase(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("e20 abort case: %w", err)
	}
	rep.Check("aborted migration leaves source authoritative and serving", abortOK)
	rep.Note("migration = bulk copy (stream over backbone) + live-stream catch-up + bounded cutover freeze; see DESIGN.md Rebalancing")
	rep.Note("writers are paced (1ms); 'errors' are client-visible failures during the move — stale-epoch referrals are retried inside the PoA and do not surface")
	return rep, nil
}

type migrateCellResult struct {
	shipped    int
	catchUp    uint64
	freeze     time.Duration
	clientErrs int
	lost       int
}

// migrateUDR builds the two-site, two-SE-per-site migration topology
// and loads rows subscribers onto p-eu-south-0.
func migrateUDR(ctx context.Context, opts Options, rows int, durability replication.Durability) (*simnet.Network, *core.UDR, []*subscriber.Profile, string, string, error) {
	net := simnet.New(netConfig(opts))
	cfg := core.DefaultConfig()
	cfg.Sites = []core.SiteSpec{
		{Name: "eu-south", SEs: 2, PartitionsPerSE: 1},
		{Name: "eu-north", SEs: 2, PartitionsPerSE: 1},
	}
	cfg.ReplicationFactor = 2
	cfg.Durability = durability
	u, err := core.New(net, cfg)
	if err != nil {
		return nil, nil, nil, "", "", err
	}
	const partID = "p-eu-south-0"
	ps := core.NewSession(net, simnet.MakeAddr("eu-south", "e20-seed"), "eu-south", core.PolicyPS)
	gen := subscriber.NewGenerator(u.Sites()...)
	profiles := make([]*subscriber.Profile, 0, rows)
	for i := 0; i < rows; i++ {
		p := gen.Profile(i)
		if _, err := ps.ProvisionAt(ctx, p, partID); err != nil {
			u.Stop()
			return nil, nil, nil, "", "", err
		}
		profiles = append(profiles, p)
	}
	return net, u, profiles, partID, "se-eu-north-1", nil
}

func migrateCell(ctx context.Context, opts Options, rows, writers int, durability replication.Durability) (*migrateCellResult, error) {
	net, u, profiles, partID, target, err := migrateUDR(ctx, opts, rows, durability)
	if err != nil {
		return nil, err
	}
	defer u.Stop()

	type keyState struct {
		mu    sync.Mutex
		acked int // highest acknowledged sequence number
	}
	states := make([]keyState, len(profiles))
	var errsMu sync.Mutex
	clientErrs := 0
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := core.NewSession(net, simnet.MakeAddr("eu-south", fmt.Sprintf("e20-w%d", w)), "eu-south", core.PolicyPS)
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
				key := w + writers*(i%(len(profiles)/writers))
				_, err := sess.Exec(ctx, core.ExecReq{
					SubscriberID: profiles[key].ID,
					Partition:    partID,
					Ops: []se.TxnOp{{Kind: se.TxnModify, Key: profiles[key].ID,
						Mods: []store.Mod{{Kind: store.ModReplace, Attr: "e20seq",
							Vals: []string{fmt.Sprintf("%06d", i)}}}}},
				})
				if err != nil {
					errsMu.Lock()
					clientErrs++
					errsMu.Unlock()
					continue
				}
				states[key].mu.Lock()
				if i > states[key].acked {
					states[key].acked = i
				}
				states[key].mu.Unlock()
			}
		}(w)
	}
	if writers > 0 {
		time.Sleep(15 * time.Millisecond)
	}

	mrep, err := u.MigratePartition(ctx, partID, target, false)
	if writers > 0 {
		time.Sleep(15 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, err
	}

	// Lost-acknowledged-write audit: the new master must hold, per
	// key, a sequence number at least as high as the last the client
	// saw acknowledged (writes are sequential per key, so a higher
	// number is a trailing in-flight write, never a reordering).
	lost := 0
	st := u.Element(target).Replica(partID).Store
	for k := range profiles {
		states[k].mu.Lock()
		acked := states[k].acked
		states[k].mu.Unlock()
		if acked == 0 {
			continue
		}
		e, _, ok := st.GetCommitted(profiles[k].ID)
		got := 0
		if ok {
			got, _ = strconv.Atoi(e.First("e20seq"))
		}
		if got < acked {
			lost++
		}
	}
	return &migrateCellResult{
		shipped:    mrep.RowsCopied,
		catchUp:    mrep.CatchUpRecords,
		freeze:     mrep.FreezeDuration,
		clientErrs: clientErrs,
		lost:       lost,
	}, nil
}

// migrateAbortCase cuts the backbone under the target mid-move and
// verifies the abort contract: source still master, target holds no
// replica, and a write through the PoA still succeeds.
func migrateAbortCase(ctx context.Context, opts Options) (bool, error) {
	net, u, profiles, partID, target, err := migrateUDR(ctx, opts, 30, replication.Async)
	if err != nil {
		return false, err
	}
	defer u.Stop()
	before, _ := u.Partition(partID)

	net.Partition([]string{"eu-north"})
	_, err = u.MigratePartition(ctx, partID, target, false)
	net.Heal()
	if err == nil {
		return false, fmt.Errorf("migration across a backbone cut did not abort")
	}
	after, _ := u.Partition(partID)
	if after.Master().Element != before.Master().Element || after.Epoch != before.Epoch {
		return false, nil
	}
	if u.Element(target).Replica(partID) != nil {
		return false, nil
	}
	ps := core.NewSession(net, simnet.MakeAddr("eu-south", "e20-abort"), "eu-south", core.PolicyPS)
	if _, err := ps.Modify(ctx, subscriber.Identity{Type: subscriber.UID, Value: profiles[0].ID},
		store.Mod{Kind: store.ModReplace, Attr: "postAbort", Vals: []string{"ok"}}); err != nil {
		return false, err
	}
	return true, nil
}
