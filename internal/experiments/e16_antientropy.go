package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/antientropy"
	"repro/internal/core"
	"repro/internal/se"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func init() {
	register("E16", "Anti-entropy repair: Merkle sync reconverges replicas after glitch + failover",
		"§3.3.1, §4.1, §5", runE16)
}

// runE16 measures the reconvergence gap the paper's asynchronous
// replication design leaves open, and the anti-entropy subsystem that
// closes it. A backbone glitch (§4.1) isolates a master site; writes
// land on the old master (its committed-but-unshipped tail), a
// failover promotes a slave, more writes land on the new master, and
// the OSS demotes the old master before the glitch heals. After the
// heal the demoted copy is silently divergent: it holds tail rows the
// new master never saw, misses every post-failover write, and its
// replication stream is stuck on a CSN gap. Without repair nothing
// reconverges it short of a full re-replication; with Merkle-digest
// repair the replicas converge to zero divergent rows while shipping
// only the divergent fraction.
func runE16(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E16", "Anti-entropy repair: Merkle sync reconverges replicas after glitch + failover")

	noRepair, err := e16Scenario(ctx, opts, false)
	if err != nil {
		return nil, err
	}
	withRepair, err := e16Scenario(ctx, opts, true)
	if err != nil {
		return nil, err
	}

	rep.AddRow("mode", "divergent after heal", "divergent after settle", "rows transferred", "full resync rows", "stream resumed")
	rep.AddRow("no repair",
		fmt.Sprint(noRepair.divergentAfterHeal), fmt.Sprint(noRepair.divergentAfterSettle),
		"0", fmt.Sprint(noRepair.fullResyncRows), fmt.Sprint(noRepair.streamResumed))
	rep.AddRow("merkle repair",
		fmt.Sprint(withRepair.divergentAfterHeal), fmt.Sprint(withRepair.divergentAfterSettle),
		fmt.Sprint(withRepair.rowsTransferred), fmt.Sprint(withRepair.fullResyncRows),
		fmt.Sprint(withRepair.streamResumed))

	rep.Check("glitch+failover leaves the demoted master divergent",
		noRepair.divergentAfterHeal > 0)
	rep.Check("without repair the divergence persists",
		noRepair.divergentAfterSettle >= noRepair.divergentAfterHeal)
	rep.Check("without repair the replication stream stays stuck",
		!noRepair.streamResumed)
	rep.Check("repair converges every replica to zero divergent rows",
		withRepair.divergentAfterSettle == 0)
	rep.Check("repair ships strictly fewer rows than a full re-replication",
		withRepair.rowsTransferred > 0 && withRepair.rowsTransferred < withRepair.fullResyncRows)
	rep.Check("repair re-attaches the demoted master to the stream",
		withRepair.streamResumed)

	rep.Note("glitch scale: the paper's 30 s backbone glitch (§4.1) runs ~100x compressed (%v held)", e16GlitchHold(opts))
	rep.Note("full resync rows = rows a ReseedSlave bulk copy would ship to the one stale copy; repair traffic covers every peer round (digest walks excluded: they are O(leaves), not O(rows))")
	return rep, nil
}

// e16Debug dumps per-repairer counters (development aid).
const e16Debug = false

type e16Result struct {
	divergentAfterHeal   int
	divergentAfterSettle int
	rowsTransferred      int
	fullResyncRows       int
	streamResumed        bool
}

func e16GlitchHold(opts Options) time.Duration {
	if opts.Quick {
		return 100 * time.Millisecond
	}
	return 300 * time.Millisecond
}

func e16Scenario(ctx context.Context, opts Options, repair bool) (*e16Result, error) {
	subs, _ := sizes(opts)
	net, u, profiles, err := buildUDR(opts, subs, func(c *core.Config) {
		c.AntiEntropy = repair
		c.RepairInterval = 25 * time.Millisecond
		c.HealPollInterval = 5 * time.Millisecond
	})
	if err != nil {
		return nil, err
	}
	defer u.Stop()

	isolated := u.Sites()[0]
	partID := fmt.Sprintf("p-%s-0", isolated)
	part, ok := u.Partition(partID)
	if !ok {
		return nil, fmt.Errorf("e16: missing partition %q", partID)
	}
	oldMasterEl := part.Master().Element
	var homeProfs []*subscriber.Profile
	for _, p := range profiles {
		if p.HomeRegion == isolated {
			homeProfs = append(homeProfs, p)
		}
	}
	n := len(homeProfs)
	if n < 4 {
		return nil, fmt.Errorf("e16: only %d subscribers on %s", n, isolated)
	}
	touch := func(sess *core.Session, p *subscriber.Profile, val string) error {
		_, err := sess.Exec(ctx, core.ExecReq{
			Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
			Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
				Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{val},
			}}}},
		})
		return err
	}

	// The glitch: the master site drops off the backbone.
	net.Partition([]string{isolated})

	// Tail writes land on the still-reachable old master and cannot
	// replicate: the async durability gap (§3.3.1).
	psIso := psSession(net, isolated)
	tailN := n / 4
	if tailN < 2 {
		tailN = 2
	}
	for _, p := range homeProfs[:tailN] {
		if err := touch(psIso, p, "tail-write"); err != nil {
			return nil, fmt.Errorf("e16: tail write: %w", err)
		}
	}

	// OSS failover promotes the first reachable slave (§3.1); writes
	// continue on the new master, overlapping part of the tail range
	// so repair faces true conflicts, not just missing rows.
	newMaster, err := u.Failover(partID)
	if err != nil {
		return nil, err
	}
	psNew := psSession(net, newMaster.Site)
	postLo, postHi := tailN/2, tailN/2+n/2
	if postHi > n {
		postHi = n
	}
	for _, p := range homeProfs[postLo:postHi] {
		if err := touch(psNew, p, "post-failover"); err != nil {
			return nil, fmt.Errorf("e16: post-failover write: %w", err)
		}
	}

	// Hold the glitch, then demote the old master (OSS) and heal.
	// Traffic is measured from here: periodic rounds before the heal
	// can race the ordinary replication stream (both deliver the same
	// young rows), which is steady-state overhead, not recovery cost.
	time.Sleep(e16GlitchHold(opts))
	u.Element(oldMasterEl).Replica(partID).Repl.Demote()
	trafficBase := e16RepairTraffic(u)
	net.Heal()

	// Let the healthy slave drain the stream, then measure.
	deadline := time.Now().Add(10 * time.Second)
	var res e16Result
	res.fullResyncRows = e16MasterRows(u, partID)
	for {
		div := e16Divergence(u, partID)
		res.divergentAfterHeal = div[oldMasterEl]
		healthy := 0
		for el, d := range div {
			if el != oldMasterEl {
				healthy += d
			}
		}
		if repair {
			// Heal watcher + scheduler are already repairing; an
			// explicit round mirrors udrctl repair and bounds the
			// wait.
			if _, err := u.RepairAll(ctx); err == nil && healthy == 0 && div[oldMasterEl] == 0 {
				break
			}
		} else if healthy == 0 {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("e16: settle timeout (repair=%v, divergence=%v)", repair, div)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Settle: without repair nothing in the system reconverges the
	// demoted copy; with repair it must be fully converged.
	time.Sleep(150 * time.Millisecond)
	total := 0
	for _, d := range e16Divergence(u, partID) {
		total += d
	}
	res.divergentAfterSettle = total
	res.rowsTransferred = e16RepairTraffic(u) - trafficBase
	if e16Debug {
		for _, elID := range u.Elements() {
			el := u.Element(elID)
			for _, pid := range el.Partitions() {
				if r := el.Repairer(pid); r != nil {
					fmt.Printf("DBG %s %s rounds=%d insync=%d shipped=%d pulled=%d leaves=%d\n",
						elID, pid, r.Rounds.Value(), r.InSyncRounds.Value(),
						r.RowsShipped.Value(), r.RowsPulled.Value(), r.LeavesDiffed.Value())
				}
			}
		}
		fmt.Printf("DBG base=%d total=%d\n", trafficBase, e16RepairTraffic(u))
	}

	// Stream probe: a fresh master write must reach the demoted copy
	// only when repair re-attached it to the replication stream.
	probe := homeProfs[n-1]
	if err := touch(psNew, probe, "stream-probe"); err != nil {
		return nil, fmt.Errorf("e16: probe write: %w", err)
	}
	probeDeadline := time.Now().Add(3 * time.Second)
	oldStore := u.Element(oldMasterEl).Replica(partID).Store
	for {
		if e, _, ok := oldStore.GetCommitted(probe.ID); ok && e.First(subscriber.AttrArea) == "stream-probe" {
			res.streamResumed = true
			break
		}
		if time.Now().After(probeDeadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return &res, nil
}

// e16Divergence counts, per slave element, the rows whose version
// digest differs from the current master copy (missing rows on either
// side included).
func e16Divergence(u *core.UDR, partID string) map[string]int {
	part, _ := u.Partition(partID)
	ms := u.Element(part.Master().Element).Replica(partID).Store
	masterDig := make(map[string]uint64)
	ms.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
		masterDig[key] = antientropy.RowDigest(key, e, m)
		return true
	})
	out := make(map[string]int)
	for _, ref := range part.Replicas[1:] {
		st := u.Element(ref.Element).Replica(partID).Store
		n := 0
		seen := make(map[string]bool)
		st.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
			if masterDig[key] != antientropy.RowDigest(key, e, m) {
				n++
			}
			seen[key] = true
			return true
		})
		for key := range masterDig {
			if !seen[key] {
				n++
			}
		}
		out[ref.Element] = n
	}
	return out
}

// e16MasterRows is the row count a full re-replication (ReseedSlave)
// of one stale copy would ship.
func e16MasterRows(u *core.UDR, partID string) int {
	part, _ := u.Partition(partID)
	return len(u.Element(part.Master().Element).Replica(partID).Store.AllMeta())
}

// e16RepairTraffic totals row transfers across every repairer in the
// UDR (both directions; digest traffic excluded).
func e16RepairTraffic(u *core.UDR) int {
	total := int64(0)
	for _, elID := range u.Elements() {
		el := u.Element(elID)
		for _, partID := range el.Partitions() {
			if r := el.Repairer(partID); r != nil {
				total += r.RowsShipped.Value() + r.RowsPulled.Value()
			}
		}
	}
	return int(total)
}
