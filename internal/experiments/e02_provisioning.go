package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/locator"
	"repro/internal/ps"
	"repro/internal/subscriber"
)

func init() {
	register("E2", "Provisioning: pre-UDC partial states vs UDC atomicity",
		"Figures 3–4, §2.4", runE2)
}

// runE2 reproduces the Figure 3 vs Figure 4 contrast: pre-UDC
// provisioning writes three nodes (HSS + 2×SLF) with no transaction
// across them, so a mid-flow failure leaves the network inconsistent
// and "normally ends up requiring manual intervention"; UDC
// provisioning writes one UDR transaction — it either fully succeeds
// or leaves nothing behind.
func runE2(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E2", "Provisioning: pre-UDC partial states vs UDC atomicity")
	subs, _ := sizes(opts)
	gen := subscriber.NewGenerator("eu-south", "eu-north", "americas")

	// --- Pre-UDC model: inject a crash after write k for k=1,2 on a
	// third of the flows each; the rest complete.
	pre := ps.NewPreUDC()
	var preOK, preFail int
	for i := 0; i < subs; i++ {
		prof := gen.Profile(i)
		switch i % 3 {
		case 0:
			pre.FailAfter = 0 // healthy flow
		case 1:
			pre.FailAfter = 1 // crash after the HSS write
		case 2:
			pre.FailAfter = 2 // crash after the first SLF write
		}
		if err := pre.Provision(prof); err != nil {
			preFail++
		} else {
			preOK++
		}
	}
	preInconsistent := 0
	for i := 0; i < subs; i++ {
		if !pre.Consistent(gen.Profile(i)) {
			preInconsistent++
		}
	}

	// --- UDC model: the same failure rate, induced by partitioning
	// the target region's master away mid-run. A failed provisioning
	// transaction must leave no trace.
	net, u, _, err := buildUDR(opts, 0)
	if err != nil {
		return nil, err
	}
	defer u.Stop()
	sites := u.Sites()
	psSess := psSession(net, sites[0])
	udrPS := ps.NewWithSession(sites[0], psSess)

	var udcOK, udcFail, udcPartial int
	for i := 0; i < subs; i++ {
		prof := gen.Profile(100000 + i)
		inducedFailure := i%3 != 0 && prof.HomeRegion != sites[0]
		if inducedFailure {
			net.Partition([]string{sites[0]})
		}
		err := udrPS.Provision(ctx, prof)
		if inducedFailure {
			net.Heal()
		}
		if err != nil {
			udcFail++
		} else {
			udcOK++
		}
		// Consistency check: the row and the local location map must
		// agree (both present or both absent).
		_, _, _, rerr := psSess.ReadProfile(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: prof.IMSIVal})
		rowPresent := rerr == nil
		_, lerr := u.Stage(sites[0]).Lookup(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: prof.IMSIVal})
		mapPresent := lerr == nil || !errors.Is(lerr, locator.ErrNotFound)
		if rowPresent != mapPresent {
			udcPartial++
		}
	}

	rep.AddRow("model", "flows", "ok", "failed", "partial states (manual intervention)")
	rep.AddRow("pre-UDC (Fig 3)", fmt.Sprint(subs), fmt.Sprint(preOK), fmt.Sprint(preFail), fmt.Sprint(preInconsistent))
	rep.AddRow("UDC (Fig 4)", fmt.Sprint(subs), fmt.Sprint(udcOK), fmt.Sprint(udcFail), fmt.Sprint(udcPartial))

	rep.Check("pre-UDC leaves partial states under failures", preInconsistent > 0)
	rep.Check("UDC leaves zero partial states", udcPartial == 0)
	rep.Check("both models saw failures (fair comparison)", preFail > 0 && udcFail > 0)
	rep.Note("pre-UDC flows crash between the HSS write and the SLF writes; UDC provisioning is one storage-element transaction (§2.4)")
	return rep, nil
}
