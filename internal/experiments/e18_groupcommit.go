package experiments

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/wal"
)

func init() {
	register("E18", "Group commit: durable commit throughput vs concurrency × WAL mode",
		"§3.1 fn 6 (perf extension)", runE18)
}

// runE18 measures what the group-commit write path buys back from the
// paper's footnote 6. E12 showed dump-before-commit costing ~100x the
// RAM-only commit — one fsync per transaction, serialized behind the
// commit lock. Group commit keeps the same guarantee (an
// acknowledged commit is on disk) but lets N concurrent commits
// stage in CSN order and share one cohort fsync, so the per-commit
// fsync cost divides by the concurrency actually present.
//
// The grid: goroutine counts × {periodic, sync-every-commit with and
// without group commit}. Every durable configuration is crash-tested
// after the measurement: close without final sync, recover, count
// losses. The fsyncs/commit column is the measured amortization.
func runE18(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E18", "Group commit: durable commit throughput vs concurrency × WAL mode")

	perG := 150
	gorCounts := []int{1, 4, 8}
	if opts.Quick {
		perG = 60
		gorCounts = []int{1, 4}
	}
	maxG := gorCounts[len(gorCounts)-1]

	type cfg struct {
		name  string
		mode  wal.Mode
		group bool
	}
	cfgs := []cfg{
		{name: "periodic (paper §3.1)", mode: wal.Periodic},
		{name: "sync-every-commit, per-commit fsync (seed)", mode: wal.SyncEveryCommit, group: false},
		{name: "sync-every-commit, group commit", mode: wal.SyncEveryCommit, group: true},
	}

	rep.AddRow("wal mode", "goroutines", "commits/s", "fsyncs/commit", "lost on crash")
	// tput[name][gors] in commits/s.
	tput := map[string]map[int]float64{}
	for _, c := range cfgs {
		tput[c.name] = map[int]float64{}
		for _, gors := range gorCounts {
			dir, err := os.MkdirTemp("", "udr-e18-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)

			st := store.New("e18")
			log, err := wal.Open(dir, c.mode)
			if err != nil {
				return nil, err
			}
			log.SetGroupCommit(c.group)
			if c.mode == wal.Periodic {
				log.StartPeriodic(10 * time.Millisecond)
			}
			// The SE's two-phase wiring: stage under the commit lock
			// (WAL order = CSN order), fsync wait outside it.
			st.SetCommitPipeline(func(rec *store.CommitRecord) (func() error, error) {
				ticket, needSync, err := log.AppendStage(rec)
				if err != nil {
					return nil, err
				}
				if !needSync {
					return nil, nil
				}
				return func() error { return log.WaitDurable(ticket) }, nil
			})

			commits := gors * perG
			var wg sync.WaitGroup
			errs := make(chan error, gors)
			start := time.Now()
			for g := 0; g < gors; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						txn := st.Begin(store.ReadCommitted)
						txn.Put(fmt.Sprintf("g%d-k%05d", g, i), store.Entry{"v": {fmt.Sprint(i)}})
						if _, err := txn.Commit(); err != nil {
							errs <- err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			elapsed := time.Since(start)
			select {
			case err := <-errs:
				return nil, err
			default:
			}

			rate := float64(commits) / elapsed.Seconds()
			tput[c.name][gors] = rate
			perCommit := float64(log.Syncs()) / float64(commits)

			// Crash: close without final sync, recover, count losses.
			log.Close()
			recovered := store.New("e18")
			csn, _, err := wal.Recover(dir, recovered)
			if err != nil {
				return nil, err
			}
			lost := commits - int(csn)

			rep.AddRow(c.name, fmt.Sprint(gors), e17Ops(rate),
				fmt.Sprintf("%.2f", perCommit), fmt.Sprintf("%d/%d", lost, commits))

			if c.mode == wal.SyncEveryCommit {
				rep.Check(fmt.Sprintf("durable at %d goroutines: zero loss (%s)",
					gors, map[bool]string{true: "group", false: "per-commit"}[c.group]), lost == 0)
				// Every committed CSN must be replayable: the group
				// cohort never reorders or drops the stream.
				if lost == 0 && recovered.Len() != commits {
					rep.Check("recovered row set complete", false)
				}
			}
			if c.mode == wal.SyncEveryCommit && c.group && gors == maxG {
				rep.Check("group commit coalesces fsyncs under concurrency",
					log.Syncs() < log.Appends())
			}
		}
	}

	seedName, groupName := cfgs[1].name, cfgs[2].name
	speedup := tput[groupName][maxG] / tput[seedName][maxG]
	rep.Rowf("group-commit speedup over per-commit fsync at %d goroutines: %.1fx", maxG, speedup)
	bar := 1.3
	if opts.Quick {
		// CI boxes vary wildly in fsync latency; quick mode only
		// rejects a true regression.
		bar = 1.05
	}
	rep.Check("group commit outperforms per-commit fsync at max concurrency", speedup >= bar)
	rep.Check("durable group commit scales with concurrency",
		tput[groupName][maxG] > tput[groupName][gorCounts[0]])
	rep.Note("same guarantee both ways — an acknowledged commit is fsynced; group commit divides the fsync across the cohort (fn 6's cost objection, amortized)")
	rep.Note("periodic mode is the paper's default: fastest, loses the unsynced tail (see E12)")
	return rep, nil
}
