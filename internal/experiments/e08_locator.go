package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/locator"
	"repro/internal/subscriber"
)

func init() {
	register("E8", "Location stage: O(log N) state-full maps vs O(1) consistent hashing",
		"§3.3.1, §3.5", runE8)
}

// runE8 reproduces the §3.5 discussion of the data location stage:
// state-full identity-location maps cost O(log N) per lookup but
// support multiple indexes and selective placement; consistent
// hashing is O(1) but "might render this approach impractical"
// because placement is hash-dictated and every identity indexes
// independently.
func runE8(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E8", "Location stage: O(log N) state-full maps vs O(1) consistent hashing")

	populations := []int{1_000, 10_000, 100_000}
	if opts.Quick {
		populations = []int{1_000, 10_000}
	}
	const lookups = 20_000
	partitions := []string{"p-0", "p-1", "p-2", "p-3"}

	rep.AddRow("subscribers", "map lookup", "map height", "hash lookup")
	var mapTimes, hashTimes []time.Duration
	var heights []int
	for _, n := range populations {
		stage := locator.NewStage("x", locator.Provisioned, true)
		hash := locator.NewHashLocator(partitions)
		ids := make([]subscriber.Identity, n)
		for i := 0; i < n; i++ {
			id := subscriber.Identity{Type: subscriber.IMSI, Value: fmt.Sprintf("21401%09d", i)}
			ids[i] = id
			pl := locator.Placement{SubscriberID: fmt.Sprintf("sub-%d", i), Partition: partitions[i%4]}
			stage.PutProfile([]subscriber.Identity{id}, pl)
			hash.PutProfile([]subscriber.Identity{id}, pl)
		}

		measure := func(l locator.Locator) time.Duration {
			// Warm-up pass so cold caches don't skew the first row,
			// then min of three trials to shed scheduler noise from
			// concurrently running suites.
			for i := 0; i < 2000; i++ {
				l.Lookup(ctx, ids[i%n])
			}
			best := time.Duration(1<<62 - 1)
			for trial := 0; trial < 3; trial++ {
				start := time.Now()
				for i := 0; i < lookups; i++ {
					if _, err := l.Lookup(ctx, ids[i%n]); err != nil {
						return 0
					}
				}
				if d := time.Since(start) / lookups; d < best {
					best = d
				}
			}
			return best
		}
		mt := measure(stage)
		ht := measure(hash)
		mapTimes = append(mapTimes, mt)
		hashTimes = append(hashTimes, ht)
		heights = append(heights, stage.Height())
		rep.AddRow(fmt.Sprint(n), mt.String(), fmt.Sprint(stage.Height()), ht.String())
	}

	// Shape checks. The O(log N) growth is asserted on the tree
	// height (deterministic); the wall-clock rows illustrate it but
	// single-nanosecond deltas are below timer noise on shared
	// hardware, so the timing checks only bound magnitudes.
	last := len(populations) - 1
	rep.Check("map lookup work grows with N (tree height, O(log N))",
		heights[last] > heights[0])
	// "Negligible" is relative to the 10ms query budget (§2.3 req 4);
	// 10µs leaves three orders of magnitude of headroom.
	rep.Check("map lookup negligible vs the 10ms budget (the paper's 'can be neglected')",
		mapTimes[last] < 10*time.Microsecond)
	rep.Check("hash lookup cost flat within noise (O(1))",
		hashTimes[last] < hashTimes[0]*3+10*time.Microsecond)

	// Functional contrast (the reason the paper keeps the maps).
	stage := locator.NewStage("x", locator.Provisioned, true)
	hash := locator.NewHashLocator(partitions)
	rep.AddRow("selective placement", fmt.Sprintf("maps=%v", stage.SupportsSelectivePlacement()),
		fmt.Sprintf("hash=%v", hash.SupportsSelectivePlacement()))
	rep.Check("maps support selective placement, hashing does not",
		stage.SupportsSelectivePlacement() && !hash.SupportsSelectivePlacement())

	// Identity co-placement: hashing scatters one subscription's
	// identities across partitions.
	split := 0
	const sample = 200
	for i := 0; i < sample; i++ {
		imsi := subscriber.Identity{Type: subscriber.IMSI, Value: fmt.Sprintf("21401%09d", i)}
		msisdn := subscriber.Identity{Type: subscriber.MSISDN, Value: fmt.Sprintf("346%08d", i)}
		if hash.PlacementFor(imsi) != hash.PlacementFor(msisdn) {
			split++
		}
	}
	rep.AddRow("hash identity split", fmt.Sprintf("%d/%d subscriptions' identities land on different partitions", split, sample))
	rep.Check("hashing scatters a subscription's identities", split > sample/2)
	rep.Note("paper: the location stage 'has not been realized by means of hashing, which grows as O(1) ... since the UDR must support multiple indexes ... and selective placement'")
	return rep, nil
}
