// Package experiments regenerates every figure and quantitative
// claim of the paper as a measured experiment (the E1–E15 index in
// DESIGN.md). Each experiment builds its own UDR topology, drives it,
// and emits a Report whose rows mirror the series the paper states.
//
// Experiments run at a compressed time/size scale; each report
// records the scale used so EXPERIMENTS.md can state paper-vs-
// measured honestly.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks populations and durations for test/bench use.
	Quick bool
	// Seed drives all randomized choices.
	Seed int64
}

// Report is an experiment's result.
type Report struct {
	ID    string
	Title string

	mu    sync.Mutex
	rows  [][]string
	notes []string
	// Checks are named pass/fail assertions about the paper's claim
	// shape (who wins, direction of effects). Tests assert on them.
	checks map[string]bool
}

// NewReport creates an empty report.
func NewReport(id, title string) *Report {
	return &Report{ID: id, Title: title, checks: make(map[string]bool)}
}

// AddRow appends a table row.
func (r *Report) AddRow(cols ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rows = append(r.rows, cols)
}

// Rowf appends a formatted single-column row.
func (r *Report) Rowf(format string, args ...any) {
	r.AddRow(fmt.Sprintf(format, args...))
}

// Note appends a free-form note.
func (r *Report) Note(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notes = append(r.notes, fmt.Sprintf(format, args...))
}

// Check records a named claim-shape assertion.
func (r *Report) Check(name string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checks[name] = ok
}

// Checks returns a copy of the recorded assertions.
func (r *Report) Checks() map[string]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]bool, len(r.checks))
	for k, v := range r.checks {
		out[k] = v
	}
	return out
}

// Passed reports whether every check passed (and at least one check
// exists).
func (r *Report) Passed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.checks) == 0 {
		return false
	}
	for _, ok := range r.checks {
		if !ok {
			return false
		}
	}
	return true
}

// Rows returns a copy of the table rows.
func (r *Report) Rows() [][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]string, len(r.rows))
	copy(out, r.rows)
	return out
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	// Column widths.
	widths := map[int]int{}
	for _, row := range r.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range r.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	for _, n := range r.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	// Deterministic check output.
	names := make([]string, 0, len(r.checks))
	for n := range r.checks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		status := "PASS"
		if !r.checks[n] {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "check: %-50s %s\n", n, status)
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(ctx context.Context, opts Options) (*Report, error)

// entry describes a registered experiment.
type entry struct {
	id     string
	title  string
	source string // paper section / figure
	run    Runner
}

var registry = map[string]entry{}

func register(id, title, source string, run Runner) {
	registry[id] = entry{id: id, title: title, source: source, run: run}
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E2 before E10.
		return idNum(out[i]) < idNum(out[j])
	})
	return out
}

func idNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// Describe returns an experiment's title and paper source.
func Describe(id string) (title, source string, ok bool) {
	e, ok := registry[id]
	return e.title, e.source, ok
}

// Run executes one experiment by ID.
func Run(ctx context.Context, id string, opts Options) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e.run(ctx, opts)
}

// RunAll executes every experiment in ID order.
func RunAll(ctx context.Context, opts Options) ([]*Report, error) {
	var out []*Report
	for _, id := range IDs() {
		rep, err := Run(ctx, id, opts)
		if err != nil {
			return out, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
