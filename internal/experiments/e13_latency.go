package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fe"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/workload"
)

func init() {
	register("E13", "10 ms response-time target under busy-hour load",
		"§2.3 req 4, §3.3", runE13)
	register("E15", "LDAP operations per network procedure",
		"§3.5 fn 8", runE15)
}

// runE13 reproduces §2.3 requirement 4: "a target average response
// time of 10ms (excluding network delays) for index-based single
// subscriber queries". The target is measured the way the paper
// states it — excluding network — as the storage-element query
// service time plus the PoA's local data-location lookup; end-to-end
// procedure latencies under the busy-hour mix are reported alongside
// for context.
func runE13(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E13", "10 ms response-time target under busy-hour load")
	subs, ops := sizes(opts)
	ops *= 2
	net, u, profiles, err := buildUDR(opts, subs)
	if err != nil {
		return nil, err
	}
	defer u.Stop()

	target := 10 * time.Millisecond
	site := u.Sites()[0]

	// (1) The paper's metric: index-based single-subscriber query,
	// excluding network = locator resolution + SE transaction
	// service time, measured in-process.
	stage := u.Stage(site)
	el := u.Element("se-" + site + "-0")
	partID := el.Partitions()[0]
	pr := el.Replica(partID)
	var queryHist metrics.Histogram
	queries := ops * 4
	for i := 0; i < queries; i++ {
		p := profiles[i%len(profiles)]
		start := time.Now()
		if _, err := stage.Lookup(ctx, subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal}); err != nil {
			return nil, err
		}
		txn := pr.Store.Begin(store.ReadCommitted)
		txn.Get(p.ID)
		if _, err := txn.Commit(); err != nil {
			return nil, err
		}
		queryHist.Record(time.Since(start))
	}
	qs := queryHist.Snapshot()
	rep.AddRow("metric", "value")
	rep.AddRow("single-subscriber query (excl. network) mean", qs.Mean.String())
	rep.AddRow("single-subscriber query (excl. network) p99", qs.P99.String())
	rep.AddRow("paper target (avg, excl. network)", target.String())
	rep.Check("average query time under the 10ms target", qs.Mean < target)
	rep.Check("even p99 query time under the 10ms target", qs.P99 < target)

	// (2) End-to-end busy-hour procedures for context (these include
	// the compressed-scale network).
	var fes []*fe.FE
	for _, s := range u.Sites() {
		fes = append(fes, fe.NewWithSession(fe.HSS, s, feSession(net, s)))
	}
	stats := workload.Run(ctx, workload.Config{
		Subscribers:  profiles,
		FEs:          fes,
		Mix:          workload.DefaultMix(),
		RoamingRatio: 0.1,
		Concurrency:  8,
		Ops:          ops,
		Seed:         opts.Seed,
	})
	s := stats.Latency.Snapshot()
	rep.AddRow("busy-hour procedures issued", fmt.Sprint(stats.Issued.Value()))
	rep.AddRow("busy-hour availability", fmt.Sprintf("%.4f", stats.Availability.Ratio()))
	rep.AddRow("procedure latency p50 (incl. network)", s.P50.String())
	rep.AddRow("procedure latency p95 (incl. network)", s.P95.String())
	rep.Check("full availability under busy-hour load", stats.Availability.Ratio() == 1)
	rep.Note("network scale ~10x compressed (backbone one-way %v); procedures span 1-5 queries and include network legs, so they exceed the per-query target by design", netConfig(opts).Backbone.Latency)
	return rep, nil
}

// runE15 reproduces §3.5 footnote 8: "typical mobile network
// procedures cause between 1 and 3 LDAP operations ... a single
// typical IMS network procedure may cause 5 or 6 LDAP read/write
// operations."
func runE15(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E15", "LDAP operations per network procedure")
	subs, _ := sizes(opts)
	net, u, profiles, err := buildUDR(opts, subs)
	if err != nil {
		return nil, err
	}
	defer u.Stop()

	site := u.Sites()[0]
	front := fe.NewWithSession(fe.HSS, site, feSession(net, site))

	reps := 10
	for i := 0; i < reps; i++ {
		p := profiles[i%len(profiles)]
		if err := front.LocationUpdate(ctx, p.IMSIVal, "mme-x", "area-x", false); err != nil {
			return nil, err
		}
		if _, err := front.Authenticate(ctx, p.IMSIVal); err != nil {
			return nil, err
		}
		if err := front.MOCall(ctx, p.MSISDNVal, false); err != nil && err != fe.ErrBarred {
			return nil, err
		}
		if _, err := front.MTCall(ctx, p.MSISDNVal); err != nil {
			return nil, err
		}
		if _, err := front.SMSDeliver(ctx, p.MSISDNVal); err != nil && err != fe.ErrBarred {
			return nil, err
		}
	}
	// IMS registration needs IMS-enabled subscriptions.
	imsRuns := 0
	for _, p := range profiles {
		if p.Services.IMSEnabled && len(p.IMPUVals) > 0 {
			if err := front.IMSRegister(ctx, p.IMPUVals[0], "scscf-x"); err != nil {
				return nil, err
			}
			imsRuns++
			if imsRuns == reps {
				break
			}
		}
	}

	rep.AddRow("procedure", "ops/invocation (measured)", "paper range")
	type row struct {
		name  string
		stats *fe.ProcStats
		lo    float64
		hi    float64
	}
	rows := []row{
		{"LocationUpdate", &front.LocationUpdateStats, 1, 3},
		{"Authenticate", &front.AuthenticateStats, 1, 3},
		{"MOCall", &front.MOCallStats, 1, 3},
		{"MTCall", &front.MTCallStats, 1, 3},
		{"SMSDeliver", &front.SMSStats, 1, 3},
		{"IMSRegister", &front.IMSRegisterStats, 5, 6},
	}
	for _, r := range rows {
		got := r.stats.OpsPerInvocation()
		rep.AddRow(r.name, fmt.Sprintf("%.1f", got), fmt.Sprintf("%.0f-%.0f", r.lo, r.hi))
		rep.Check(fmt.Sprintf("%s within paper range", r.name), got >= r.lo && got <= r.hi)
	}
	rep.Note("paper fn 8: mobile procedures 1-3 LDAP ops; IMS procedures 5-6")
	return rep, nil
}
