package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/se"
	"repro/internal/store"
	"repro/internal/subscriber"
)

func init() {
	register("E3", "C-over-A on partition: FE reads survive, PS writes fail",
		"Figures 5–6, §3.2, §4.1", runE3)
}

// runE3 reproduces the paper's central CAP observation (§4.1): during
// a network partition "most transactions coming from application
// front-ends proceed successfully since those transactions are
// composed of mostly reads, [while] transactions coming from a PS
// almost always fail since most provisioning transactions involve
// writes to subscriber data".
func runE3(ctx context.Context, opts Options) (*Report, error) {
	rep := NewReport("E3", "C-over-A on partition: FE reads survive, PS writes fail")
	subs, ops := sizes(opts)
	net, u, profiles, err := buildUDR(opts, subs)
	if err != nil {
		return nil, err
	}
	defer u.Stop()

	sites := u.Sites()
	isolated := sites[0]
	fe := feSession(net, isolated)
	psSess := psSession(net, isolated)

	runPhase := func(n int) (feOK, feFail, psOK, psFail int) {
		for i := 0; i < n; i++ {
			p := profiles[i%len(profiles)]
			// FE transaction: a read (call-setup style).
			if _, _, _, err := fe.ReadProfile(ctx, subscriber.Identity{
				Type: subscriber.MSISDN, Value: p.MSISDNVal}); err == nil {
				feOK++
			} else {
				feFail++
			}
			// PS transaction: a write (provisioning style).
			if _, err := psSess.Exec(ctx, core.ExecReq{
				Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
				Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
					Kind: store.ModReplace, Attr: subscriber.AttrSMSEnabled, Vals: []string{"TRUE"},
				}}}},
			}); err == nil {
				psOK++
			} else {
				psFail++
			}
		}
		return
	}

	rep.AddRow("phase", "FE availability", "PS write availability")
	feOK, feFail, psOK, psFail := runPhase(ops / 3)
	rep.AddRow("before partition", pct(feOK, feOK+feFail), pct(psOK, psOK+psFail))
	rep.Check("pre-partition: both classes fully available", feFail == 0 && psFail == 0)

	net.Partition([]string{isolated})
	feOK2, feFail2, psOK2, psFail2 := runPhase(ops / 3)
	rep.AddRow("during partition", pct(feOK2, feOK2+feFail2), pct(psOK2, psOK2+psFail2))
	feAvail := float64(feOK2) / float64(feOK2+feFail2)
	psAvail := float64(psOK2) / float64(psOK2+psFail2)
	rep.Check("partition: FE reads fully available (slave copies)", feFail2 == 0)
	rep.Check("partition: PS writes mostly fail (C over A)", psAvail < 0.5)
	rep.Check("partition: FE availability >> PS availability", feAvail > psAvail)
	// Writes to locally-mastered partitions (1 of 3 regions) still
	// commit: PS availability ≈ 1/3.
	rep.Note("PS write availability during partition = %.2f (expected ≈ 1/3: only the locally-mastered region accepts writes)", psAvail)

	net.Heal()
	feOK3, feFail3, psOK3, psFail3 := runPhase(ops / 3)
	rep.AddRow("after heal", pct(feOK3, feOK3+feFail3), pct(psOK3, psOK3+psFail3))
	rep.Check("post-heal: both classes fully available again", feFail3 == 0 && psFail3 == 0)

	rep.Note("paper §3.6: the UDR is PA/EL for FE transactions but PC/EC for PS transactions")
	return rep, nil
}
