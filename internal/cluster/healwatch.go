package cluster

import (
	"sync"
	"time"

	"repro/internal/simnet"
)

// HealWatcher polls a site's inter-site reachability and reports
// partition-heal transitions: the OSS-side detection (§2.4) that lets
// a site trigger an immediate anti-entropy repair round the moment a
// backbone glitch (§4.1) ends, instead of waiting for the next
// periodic tick while replicas serve divergent data.
type HealWatcher struct {
	net    *simnet.Network
	site   string
	every  time.Duration
	onHeal func(peerSite string)

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewHealWatcher returns a started watcher that calls onHeal(peer)
// whenever a previously partitioned peer site becomes reachable
// again. The first poll only records the baseline; it never fires.
func NewHealWatcher(net *simnet.Network, site string, every time.Duration, onHeal func(peerSite string)) *HealWatcher {
	if every <= 0 {
		every = 10 * time.Millisecond
	}
	w := &HealWatcher{
		net:    net,
		site:   site,
		every:  every,
		onHeal: onHeal,
		stop:   make(chan struct{}),
	}
	w.wg.Add(1)
	go w.run()
	return w
}

// Stop halts the watcher.
func (w *HealWatcher) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	w.wg.Wait()
}

func (w *HealWatcher) run() {
	defer w.wg.Done()
	parted := make(map[string]bool)
	first := true
	t := time.NewTicker(w.every)
	defer t.Stop()
	for {
		for _, peer := range w.net.Sites() {
			if peer == w.site {
				continue
			}
			p := w.net.Partitioned(w.site, peer)
			if !first && parted[peer] && !p {
				w.onHeal(peer)
			}
			parted[peer] = p
		}
		first = false
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
	}
}

// StartHealWatch attaches a heal watcher to the cluster (one per
// site). A second call replaces the previous watcher.
func (c *Cluster) StartHealWatch(net *simnet.Network, every time.Duration, onHeal func(peerSite string)) {
	c.mu.Lock()
	prev := c.healw
	c.healw = nil
	c.mu.Unlock()
	if prev != nil {
		prev.Stop()
	}
	w := NewHealWatcher(net, c.cfg.Site, every, onHeal)
	c.mu.Lock()
	c.healw = w
	c.mu.Unlock()
}

// StopHealWatch stops the attached watcher, if any.
func (c *Cluster) StopHealWatch() {
	c.mu.Lock()
	w := c.healw
	c.healw = nil
	c.mu.Unlock()
	if w != nil {
		w.Stop()
	}
}
