// Package cluster models the blade cluster that hosts one site of the
// UDR NF (§3.4): blades carrying storage-element processes
// (RAM-hungry) and stateless LDAP server processes (CPU-hungry)
// behind an L4 balancer that realizes the site's point of access.
//
// The package provides both the structural model (blade accounting,
// scale-up limits) and the paper's §3.5 capacity arithmetic, which
// experiment E7 reproduces and cross-checks against scaled-down
// measured throughput.
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/se"
)

// The paper's §3.5 capacity constants (full scale, state-of-the-art
// hardware as of 2014).
const (
	// PaperSubsPerSE: a 2-blade SE holds up to 2e6 average-profile
	// subscribers (§3.5).
	PaperSubsPerSE = 2_000_000
	// PaperMaxSEPerCluster is the artificial 16-SE limit per blade
	// cluster used for the paper's calculations.
	PaperMaxSEPerCluster = 16
	// PaperMaxSEPerUDR is the 256-SE limit per UDR system.
	PaperMaxSEPerUDR = 256
	// PaperOpsPerLDAPServer: one LDAP server on a state-of-the-art
	// blade supports 1e6 indexed single-subscriber read/write
	// queries per second (§3.5).
	PaperOpsPerLDAPServer = 1_000_000
	// PaperMaxLDAPPerCluster is the assumed 32-LDAP-server limit per
	// cluster.
	PaperMaxLDAPPerCluster = 32
	// PaperMaxClusters is the assumed 256-blade-cluster limit per
	// UDR NF.
	PaperMaxClusters = 256
	// PaperClusterOps is the per-cluster ops/s figure the paper
	// states ("36·10E+06"). Note 32 servers × 1e6 ops/s = 32e6; the
	// paper's 36e6 does not follow from its own per-server figure —
	// EXPERIMENTS.md discusses the discrepancy. We reproduce both.
	PaperClusterOps = 36_000_000
	// PaperPartitionBytes is the ~200 GB partition sizing (§2.3).
	PaperPartitionBytes = 200 << 30
)

// CapacityRow is one row of the §3.5 capacity table E7 regenerates.
type CapacityRow struct {
	Label string
	Value float64
	Unit  string
}

// PaperCapacityModel recomputes every §3.5 capacity claim from the
// per-element constants.
func PaperCapacityModel() []CapacityRow {
	subsPerCluster := float64(PaperSubsPerSE) * PaperMaxSEPerCluster
	subsPerUDR := float64(PaperSubsPerSE) * PaperMaxSEPerUDR
	opsPerClusterDerived := float64(PaperOpsPerLDAPServer) * PaperMaxLDAPPerCluster
	opsPerUDRPaper := float64(PaperClusterOps) * PaperMaxClusters
	opsPerSub := opsPerUDRPaper / subsPerUDR
	return []CapacityRow{
		{"subscribers per SE", PaperSubsPerSE, "subs"},
		{"subscribers per cluster (16 SE)", subsPerCluster, "subs"},
		{"subscribers per UDR (256 SE)", subsPerUDR, "subs"},
		{"ops/s per LDAP server", PaperOpsPerLDAPServer, "ops/s"},
		{"ops/s per cluster (32 LDAP, derived)", opsPerClusterDerived, "ops/s"},
		{"ops/s per cluster (paper's stated)", PaperClusterOps, "ops/s"},
		{"ops/s per UDR (256 clusters, paper)", opsPerUDRPaper, "ops/s"},
		{"ops per subscriber per second", opsPerSub, "ops/sub/s"},
	}
}

// Blade resource model: each blade offers CPU and RAM units. An SE
// process consumes mostly RAM; an LDAP server mostly CPU. Combining
// both kinds on one blade "offers the best resource utilization
// chances" (§3.4.1) — the model makes that measurable.
const (
	bladeCPU = 100 // CPU units per blade
	bladeRAM = 100 // RAM units per blade

	seCPUPerBlade = 25 // an SE process leaves ~75% CPU free on its blades
	seRAMPerBlade = 90 // ...but consumes nearly all RAM

	ldapCPU = 45 // an LDAP server is processor-hungry
	ldapRAM = 5
)

// Errors returned by scale-up operations.
var (
	// ErrNoBladeCapacity reports a cluster that cannot fit another
	// process: the scale-up bound of §3.4.1.
	ErrNoBladeCapacity = errors.New("cluster: no blade capacity left")
	// ErrSELimit reports the per-cluster SE limit.
	ErrSELimit = errors.New("cluster: SE limit reached")
	// ErrLDAPLimit reports the per-cluster LDAP server limit.
	ErrLDAPLimit = errors.New("cluster: LDAP server limit reached")
)

// Config sizes a cluster.
type Config struct {
	// Site is the geographic site this cluster serves.
	Site string
	// Blades in the cluster chassis.
	Blades int
	// MaxSE and MaxLDAP are the administrative limits (paper: 16
	// and 32). Zero means the paper's defaults.
	MaxSE   int
	MaxLDAP int
	// BladesPerSE is the SE redundancy group size (2–4, §3.4.1).
	BladesPerSE int
}

// Cluster tracks one site's blade usage and hosted processes.
type Cluster struct {
	cfg Config

	mu       sync.Mutex
	cpuUsed  int
	ramUsed  int
	elements []*se.Element
	ldap     int
	healw    *HealWatcher
}

// New returns an empty cluster.
func New(cfg Config) *Cluster {
	if cfg.Blades == 0 {
		cfg.Blades = 16
	}
	if cfg.MaxSE == 0 {
		cfg.MaxSE = PaperMaxSEPerCluster
	}
	if cfg.MaxLDAP == 0 {
		cfg.MaxLDAP = PaperMaxLDAPPerCluster
	}
	if cfg.BladesPerSE == 0 {
		cfg.BladesPerSE = 2
	}
	return &Cluster{cfg: cfg}
}

// Site returns the cluster's site.
func (c *Cluster) Site() string { return c.cfg.Site }

// totalCPU and totalRAM are the chassis budgets.
func (c *Cluster) totalCPU() int { return c.cfg.Blades * bladeCPU }
func (c *Cluster) totalRAM() int { return c.cfg.Blades * bladeRAM }

// HostSE accounts for (and records) a storage element deployed on
// this cluster. The element itself is built by the caller; the
// cluster enforces the scale-up bounds.
func (c *Cluster) HostSE(e *se.Element) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.elements) >= c.cfg.MaxSE {
		return fmt.Errorf("%w (%d)", ErrSELimit, c.cfg.MaxSE)
	}
	cpu := seCPUPerBlade * c.cfg.BladesPerSE
	ram := seRAMPerBlade * c.cfg.BladesPerSE
	if c.cpuUsed+cpu > c.totalCPU() || c.ramUsed+ram > c.totalRAM() {
		return ErrNoBladeCapacity
	}
	c.cpuUsed += cpu
	c.ramUsed += ram
	c.elements = append(c.elements, e)
	return nil
}

// AddLDAPServers accounts for n additional LDAP server processes and
// returns the new total. LDAP capacity growth is automatic once the
// balancer detects the new servers (§3.4.1), so there is no handle to
// return.
func (c *Cluster) AddLDAPServers(n int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		if c.ldap >= c.cfg.MaxLDAP {
			return c.ldap, fmt.Errorf("%w (%d)", ErrLDAPLimit, c.cfg.MaxLDAP)
		}
		if c.cpuUsed+ldapCPU > c.totalCPU() || c.ramUsed+ldapRAM > c.totalRAM() {
			return c.ldap, ErrNoBladeCapacity
		}
		c.cpuUsed += ldapCPU
		c.ramUsed += ldapRAM
		c.ldap++
	}
	return c.ldap, nil
}

// LDAPServers returns the hosted LDAP server count.
func (c *Cluster) LDAPServers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ldap
}

// Elements returns the hosted storage elements.
func (c *Cluster) Elements() []*se.Element {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*se.Element(nil), c.elements...)
}

// Utilization reports CPU and RAM usage fractions.
func (c *Cluster) Utilization() (cpu, ram float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return float64(c.cpuUsed) / float64(c.totalCPU()),
		float64(c.ramUsed) / float64(c.totalRAM())
}

// String summarises the cluster.
func (c *Cluster) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("cluster{site=%s blades=%d se=%d ldap=%d cpu=%d/%d ram=%d/%d}",
		c.cfg.Site, c.cfg.Blades, len(c.elements), c.ldap,
		c.cpuUsed, c.totalCPU(), c.ramUsed, c.totalRAM())
}
