package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

func TestHealWatcherFiresOnHeal(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("a")
	net.AddSite("b")

	var mu sync.Mutex
	healed := map[string]int{}
	w := NewHealWatcher(net, "a", time.Millisecond, func(peer string) {
		mu.Lock()
		healed[peer]++
		mu.Unlock()
	})
	defer w.Stop()

	// Baseline (healthy) must not fire.
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	if len(healed) != 0 {
		mu.Unlock()
		t.Fatalf("watcher fired without a partition: %v", healed)
	}
	mu.Unlock()

	net.Partition([]string{"a"})
	time.Sleep(10 * time.Millisecond)
	net.Heal()

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := healed["b"]
		mu.Unlock()
		if n == 1 {
			break
		}
		if n > 1 {
			t.Fatalf("heal fired %d times for one transition", n)
		}
		if time.Now().After(deadline) {
			t.Fatal("heal transition never reported")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHealWatcherStartsPartitioned(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("a")
	net.AddSite("b")
	net.Partition([]string{"a"})

	fired := make(chan string, 4)
	c := New(Config{Site: "a"})
	c.StartHealWatch(net, time.Millisecond, func(peer string) { fired <- peer })
	defer c.StopHealWatch()

	// A watcher born into a partition records it as baseline and
	// fires only on the heal.
	select {
	case p := <-fired:
		t.Fatalf("fired %q before heal", p)
	case <-time.After(10 * time.Millisecond):
	}
	net.Heal()
	select {
	case p := <-fired:
		if p != "b" {
			t.Fatalf("healed peer = %q, want b", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("heal never reported")
	}
}
