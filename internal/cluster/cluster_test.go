package cluster

import (
	"errors"
	"math"
	"testing"

	"repro/internal/se"
	"repro/internal/simnet"
)

func TestPaperCapacityModel(t *testing.T) {
	rows := PaperCapacityModel()
	byLabel := map[string]float64{}
	for _, r := range rows {
		byLabel[r.Label] = r.Value
	}
	// §3.5: 16 SE × 2M = 32M subscribers per cluster.
	if byLabel["subscribers per cluster (16 SE)"] != 32e6 {
		t.Fatalf("cluster subs = %v", byLabel["subscribers per cluster (16 SE)"])
	}
	// §3.5: 256 SE × 2M = 512M subscribers per UDR.
	if byLabel["subscribers per UDR (256 SE)"] != 512e6 {
		t.Fatalf("UDR subs = %v", byLabel["subscribers per UDR (256 SE)"])
	}
	// §3.5: the paper's stated 36M/cluster and 9,216M/UDR.
	if byLabel["ops/s per UDR (256 clusters, paper)"] != 9216e6 {
		t.Fatalf("UDR ops = %v", byLabel["ops/s per UDR (256 clusters, paper)"])
	}
	// Derived (32 × 1M) differs from the paper's stated 36M — both
	// must be present so EXPERIMENTS.md can discuss it.
	if byLabel["ops/s per cluster (32 LDAP, derived)"] != 32e6 {
		t.Fatalf("derived cluster ops = %v", byLabel["ops/s per cluster (32 LDAP, derived)"])
	}
	// §3.5: "around 18 LDAP read/write operations per subscriber per
	// second" (9216e6 / 512e6 = 18).
	ops := byLabel["ops per subscriber per second"]
	if math.Abs(ops-18) > 0.01 {
		t.Fatalf("ops/sub/s = %v, want 18", ops)
	}
}

func TestHostSELimits(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	c := New(Config{Site: "eu", Blades: 4, MaxSE: 2, BladesPerSE: 2})
	mk := func(id string) *se.Element {
		return se.New(n, se.Config{ID: id, Site: "eu"})
	}
	if err := c.HostSE(mk("se-1")); err != nil {
		t.Fatal(err)
	}
	// Second SE needs 2 more blades' RAM: 4 blades = 400 RAM,
	// se = 180 RAM each, fits.
	if err := c.HostSE(mk("se-2")); err != nil {
		t.Fatal(err)
	}
	// Administrative limit reached.
	if err := c.HostSE(mk("se-3")); !errors.Is(err, ErrSELimit) {
		t.Fatalf("err = %v", err)
	}
	if len(c.Elements()) != 2 {
		t.Fatalf("elements = %d", len(c.Elements()))
	}
}

func TestBladeRAMExhaustion(t *testing.T) {
	n := simnet.New(simnet.FastConfig())
	// 2 blades = 200 RAM; one SE takes 180, a second cannot fit.
	c := New(Config{Site: "eu", Blades: 2, MaxSE: 16, BladesPerSE: 2})
	if err := c.HostSE(se.New(n, se.Config{ID: "se-1", Site: "eu"})); err != nil {
		t.Fatal(err)
	}
	err := c.HostSE(se.New(n, se.Config{ID: "se-2", Site: "eu"}))
	if !errors.Is(err, ErrNoBladeCapacity) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddLDAPServers(t *testing.T) {
	c := New(Config{Site: "eu", Blades: 16})
	nservers, err := c.AddLDAPServers(4)
	if err != nil || nservers != 4 {
		t.Fatalf("add: %d %v", nservers, err)
	}
	if c.LDAPServers() != 4 {
		t.Fatalf("servers = %d", c.LDAPServers())
	}
}

func TestLDAPLimit(t *testing.T) {
	c := New(Config{Site: "eu", Blades: 64, MaxLDAP: 3})
	if _, err := c.AddLDAPServers(3); err != nil {
		t.Fatal(err)
	}
	nservers, err := c.AddLDAPServers(1)
	if !errors.Is(err, ErrLDAPLimit) || nservers != 3 {
		t.Fatalf("err = %v n = %d", err, nservers)
	}
}

func TestLDAPCPUExhaustion(t *testing.T) {
	// 1 blade = 100 CPU; each LDAP server takes 45: two fit, the
	// third does not.
	c := New(Config{Site: "eu", Blades: 1, MaxLDAP: 32})
	nservers, err := c.AddLDAPServers(3)
	if !errors.Is(err, ErrNoBladeCapacity) || nservers != 2 {
		t.Fatalf("err = %v n = %d", err, nservers)
	}
}

func TestMixedUtilization(t *testing.T) {
	// §3.4.1: combining RAM-hungry SEs and CPU-hungry LDAP servers
	// on one cluster uses both resources; verify the model exposes
	// the complementarity.
	n := simnet.New(simnet.FastConfig())
	c := New(Config{Site: "eu", Blades: 4, BladesPerSE: 2})
	if err := c.HostSE(se.New(n, se.Config{ID: "se-1", Site: "eu"})); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddLDAPServers(4); err != nil {
		t.Fatal(err)
	}
	cpu, ram := c.Utilization()
	if cpu <= 0 || cpu > 1 || ram <= 0 || ram > 1 {
		t.Fatalf("utilization = %v/%v", cpu, ram)
	}
	if c.String() == "" {
		t.Fatal("empty String()")
	}

	// Complementarity: an SE-only cluster is RAM-bound, an LDAP-only
	// cluster is CPU-bound.
	seOnly := New(Config{Site: "x", Blades: 4, BladesPerSE: 2})
	if err := seOnly.HostSE(se.New(n, se.Config{ID: "se-x", Site: "x"})); err != nil {
		t.Fatal(err)
	}
	cpuSE, ramSE := seOnly.Utilization()
	if ramSE <= cpuSE {
		t.Fatalf("SE-only cluster should be RAM-bound: cpu=%v ram=%v", cpuSE, ramSE)
	}
	ldapOnly := New(Config{Site: "y", Blades: 4})
	if _, err := ldapOnly.AddLDAPServers(4); err != nil {
		t.Fatal(err)
	}
	cpuL, ramL := ldapOnly.Utilization()
	if cpuL <= ramL {
		t.Fatalf("LDAP-only cluster should be CPU-bound: cpu=%v ram=%v", cpuL, ramL)
	}
}
