// Package vclock implements version vectors, the causality-tracking
// primitive behind the multi-master evolution the paper sketches in §5:
// when masters on both sides of a partition accept writes, their views
// diverge, and after the partition heals a consistency-restoration
// process must decide, per row, whether one view supersedes the other
// or the two conflict and need resolution.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// VC is a version vector mapping replica IDs to event counters.
// The zero value (nil map) is a valid empty vector.
type VC map[string]uint64

// New returns an empty version vector.
func New() VC { return VC{} }

// Clone returns a deep copy.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// Tick increments the counter for replica id and returns the vector
// for chaining. Tick on a nil vector allocates.
func (v VC) Tick(id string) VC {
	if v == nil {
		v = VC{}
	}
	v[id]++
	return v
}

// Get returns the counter for replica id (0 when absent).
func (v VC) Get(id string) uint64 { return v[id] }

// Merge returns the element-wise maximum of v and o, the vector that
// dominates both (used after conflict resolution).
func (v VC) Merge(o VC) VC {
	out := v.Clone()
	if out == nil {
		out = VC{}
	}
	for k, n := range o {
		if n > out[k] {
			out[k] = n
		}
	}
	return out
}

// Ordering is the causal relationship between two version vectors.
type Ordering int

const (
	// Equal means the vectors are identical.
	Equal Ordering = iota
	// Before means the receiver causally precedes the argument.
	Before
	// After means the receiver causally follows the argument.
	After
	// Concurrent means neither dominates: a true conflict.
	Concurrent
)

// String returns the ordering name.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Compare returns the causal ordering of v relative to o.
func (v VC) Compare(o VC) Ordering {
	vLess, oLess := false, false
	for k, n := range v {
		if m := o[k]; n < m {
			vLess = true
		} else if n > m {
			oLess = true
		}
	}
	for k, m := range o {
		if n := v[k]; n < m {
			vLess = true
		} else if n > m {
			oLess = true
		}
	}
	switch {
	case vLess && oLess:
		return Concurrent
	case vLess:
		return Before
	case oLess:
		return After
	default:
		return Equal
	}
}

// Dominates reports whether v is causally at or after o.
func (v VC) Dominates(o VC) bool {
	c := v.Compare(o)
	return c == Equal || c == After
}

// String renders the vector deterministically, e.g. "{a:1 b:3}".
func (v VC) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, v[k])
	}
	b.WriteByte('}')
	return b.String()
}
