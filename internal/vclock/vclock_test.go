package vclock

import (
	"testing"
	"testing/quick"
)

func TestEmptyVectorsEqual(t *testing.T) {
	a, b := New(), New()
	if a.Compare(b) != Equal {
		t.Fatal("two empty vectors should be equal")
	}
	var nilVC VC
	if nilVC.Compare(a) != Equal {
		t.Fatal("nil and empty should be equal")
	}
}

func TestTickCreatesAfter(t *testing.T) {
	a := New()
	b := a.Clone().Tick("x")
	if b.Compare(a) != After {
		t.Fatalf("ticked vector should be After, got %v", b.Compare(a))
	}
	if a.Compare(b) != Before {
		t.Fatalf("original should be Before, got %v", a.Compare(b))
	}
}

func TestTickOnNil(t *testing.T) {
	var v VC
	v = v.Tick("a")
	if v.Get("a") != 1 {
		t.Fatalf("tick on nil: %v", v)
	}
}

func TestConcurrent(t *testing.T) {
	a := New().Tick("a")
	b := New().Tick("b")
	if a.Compare(b) != Concurrent {
		t.Fatalf("want Concurrent, got %v", a.Compare(b))
	}
	if b.Compare(a) != Concurrent {
		t.Fatalf("want Concurrent (symmetric), got %v", b.Compare(a))
	}
}

func TestMergeDominatesBoth(t *testing.T) {
	a := New().Tick("a").Tick("a")
	b := New().Tick("b")
	m := a.Merge(b)
	if !m.Dominates(a) || !m.Dominates(b) {
		t.Fatalf("merge %v does not dominate %v and %v", m, a, b)
	}
	if m.Get("a") != 2 || m.Get("b") != 1 {
		t.Fatalf("merge = %v", m)
	}
}

func TestMergeOnNil(t *testing.T) {
	var v VC
	m := v.Merge(New().Tick("x"))
	if m.Get("x") != 1 {
		t.Fatalf("merge on nil: %v", m)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New().Tick("a")
	b := a.Clone()
	b.Tick("a")
	if a.Get("a") != 1 || b.Get("a") != 2 {
		t.Fatalf("clone not independent: a=%v b=%v", a, b)
	}
}

func TestDominates(t *testing.T) {
	a := New().Tick("a")
	b := a.Clone().Tick("b")
	if !b.Dominates(a) {
		t.Fatal("b should dominate a")
	}
	if a.Dominates(b) {
		t.Fatal("a should not dominate b")
	}
	if !a.Dominates(a.Clone()) {
		t.Fatal("vector should dominate its equal")
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestStringDeterministic(t *testing.T) {
	v := VC{"b": 2, "a": 1}
	if v.String() != "{a:1 b:2}" {
		t.Fatalf("String() = %q", v.String())
	}
}

// fromCounts builds a VC over a fixed replica universe from generated
// counters, for property tests.
func fromCounts(counts [3]uint8) VC {
	v := VC{}
	ids := []string{"r0", "r1", "r2"}
	for i, c := range counts {
		if c > 0 {
			v[ids[i]] = uint64(c)
		}
	}
	return v
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b [3]uint8) bool {
		va, vb := fromCounts(a), fromCounts(b)
		ab, ba := va.Compare(vb), vb.Compare(va)
		switch ab {
		case Equal:
			return ba == Equal
		case Before:
			return ba == After
		case After:
			return ba == Before
		case Concurrent:
			return ba == Concurrent
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeUpperBoundProperty(t *testing.T) {
	f := func(a, b [3]uint8) bool {
		va, vb := fromCounts(a), fromCounts(b)
		m := va.Merge(vb)
		return m.Dominates(va) && m.Dominates(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCommutativeProperty(t *testing.T) {
	f := func(a, b [3]uint8) bool {
		va, vb := fromCounts(a), fromCounts(b)
		return va.Merge(vb).Compare(vb.Merge(va)) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIdempotentProperty(t *testing.T) {
	f := func(a [3]uint8) bool {
		va := fromCounts(a)
		return va.Merge(va).Compare(va) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
