// Package subscriber defines the telecom subscriber data model the
// UDR stores: the profile a HLR/HSS front-end needs to run network
// procedures (authentication, location management, call handling) and
// the identities (IMSI, MSISDN, IMPU, IMPI) under which the data must
// be indexed (§3.3.1: "one index per subscriber identity").
package subscriber

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/store"
)

// IdentityType enumerates the subscriber identity spaces the UDR
// indexes.
type IdentityType int

// Identity types named in the paper (§2.4, §3.5), plus the canonical
// subscription ID itself (DN-based LDAP access needs an index too).
const (
	// IMSI is the International Mobile Subscriber Identity (SIM).
	IMSI IdentityType = iota
	// MSISDN is the subscriber's phone number.
	MSISDN
	// IMPU is an IMS public user identity (SIP URI); a subscription
	// may have several.
	IMPU
	// IMPI is the IMS private user identity used for authentication.
	IMPI
	// UID is the canonical subscription identifier (the row key and
	// the uid= component of the entry's DN).
	UID
)

// String returns the 3GPP name of the identity type.
func (t IdentityType) String() string {
	switch t {
	case IMSI:
		return "IMSI"
	case MSISDN:
		return "MSISDN"
	case IMPU:
		return "IMPU"
	case IMPI:
		return "IMPI"
	case UID:
		return "UID"
	}
	return fmt.Sprintf("IdentityType(%d)", int(t))
}

// Identity is one (type, value) subscriber identity.
type Identity struct {
	Type  IdentityType
	Value string
}

// String renders "TYPE:value", the key format used by location maps.
func (id Identity) String() string { return id.Type.String() + ":" + id.Value }

// Services is the per-subscription service profile: the data network
// procedures consult and provisioning mutates. The barring flags
// model §3.2's pay-call barring example.
type Services struct {
	// BarOutgoing blocks all mobile-originated calls.
	BarOutgoing bool
	// BarPremium blocks calls to premium-rate ("hi-toll") numbers.
	BarPremium bool
	// BarRoaming blocks service while roaming outside the home
	// region.
	BarRoaming bool
	// ForwardUnconditional, when non-empty, forwards all incoming
	// calls to the given MSISDN.
	ForwardUnconditional string
	// SMSEnabled allows short-message service.
	SMSEnabled bool
	// IMSEnabled allows IMS (VoLTE/fixed) registration.
	IMSEnabled bool
}

// Location is the mobility state written by location-management
// procedures.
type Location struct {
	// ServingNode is the MME/VLR/S-CSCF currently serving the user.
	ServingNode string
	// Area is the tracking/location area code.
	Area string
	// Roaming reports whether the user is outside the home region.
	Roaming bool
	// UpdatedAtMicro is the UnixMicro time of the last update.
	UpdatedAtMicro int64
}

// Profile is the full subscriber record stored in the UDR.
type Profile struct {
	// ID is the canonical subscription identifier (the UDR row key).
	ID string
	// IMSIVal and MSISDNVal are the mobile identities.
	IMSIVal   string
	MSISDNVal string
	// IMPIVal and IMPUVals are the IMS identities.
	IMPIVal  string
	IMPUVals []string
	// HomeRegion is the region the subscription belongs to; the
	// locator's selective placement pins the data near it (§3.5).
	HomeRegion string
	// AuthKeyHex is the hex-encoded permanent key K used to derive
	// authentication vectors.
	AuthKeyHex string
	// SQN is the authentication sequence number; incremented by
	// every authentication procedure (a write!).
	SQN uint64
	// Active reports whether the subscription is activated.
	Active bool
	// Services and Location as above.
	Services Services
	Location Location
}

// Identities returns every identity under which this profile must be
// locatable.
func (p *Profile) Identities() []Identity {
	ids := make([]Identity, 0, 4+len(p.IMPUVals))
	if p.ID != "" {
		ids = append(ids, Identity{UID, p.ID})
	}
	if p.IMSIVal != "" {
		ids = append(ids, Identity{IMSI, p.IMSIVal})
	}
	if p.MSISDNVal != "" {
		ids = append(ids, Identity{MSISDN, p.MSISDNVal})
	}
	if p.IMPIVal != "" {
		ids = append(ids, Identity{IMPI, p.IMPIVal})
	}
	for _, u := range p.IMPUVals {
		ids = append(ids, Identity{IMPU, u})
	}
	return ids
}

// Attribute names used in the stored entry (LDAP-style).
const (
	AttrObjectClass = "objectClass"
	AttrID          = "uid"
	AttrIMSI        = "imsi"
	AttrMSISDN      = "msisdn"
	AttrIMPI        = "impi"
	AttrIMPU        = "impu"
	AttrHomeRegion  = "homeRegion"
	AttrAuthKey     = "authKey"
	AttrSQN         = "sqn"
	AttrActive      = "active"

	AttrBarOutgoing   = "barOutgoing"
	AttrBarPremium    = "barPremium"
	AttrBarRoaming    = "barRoaming"
	AttrForwardUncond = "cfu"
	AttrSMSEnabled    = "smsEnabled"
	AttrIMSEnabled    = "imsEnabled"

	AttrServingNode = "servingNode"
	AttrArea        = "area"
	AttrRoaming     = "roaming"
	AttrLocUpdated  = "locUpdatedAt"

	// Sh transparent (repository) data, TS 29.328: an opaque blob
	// plus the version counter its optimistic-concurrency update
	// guards on. Not part of Profile — FromEntry tolerates and
	// ToEntry omits them; they ride alongside in the stored entry.
	AttrShData    = "shData"
	AttrShDataVer = "shDataVersion"
)

// ObjectClass is the objectClass value for subscriber entries.
const ObjectClass = "udrSubscription"

// IdentityAttrs lists the searchable identity attributes: the keys
// the §3.3 location stages resolve and the storage elements keep
// secondary indexes over for the §3.4 identity-search fallback.
var IdentityAttrs = []string{AttrIMSI, AttrMSISDN, AttrIMPI, AttrIMPU}

func boolStr(b bool) string {
	if b {
		return "TRUE"
	}
	return "FALSE"
}

func strBool(s string) bool { return s == "TRUE" }

// ToEntry converts the profile into a stored attribute entry.
func (p *Profile) ToEntry() store.Entry {
	e := store.Entry{
		AttrObjectClass: {ObjectClass},
		AttrID:          {p.ID},
		AttrActive:      {boolStr(p.Active)},
		AttrSQN:         {strconv.FormatUint(p.SQN, 10)},
	}
	set := func(attr, v string) {
		if v != "" {
			e[attr] = []string{v}
		}
	}
	set(AttrIMSI, p.IMSIVal)
	set(AttrMSISDN, p.MSISDNVal)
	set(AttrIMPI, p.IMPIVal)
	if len(p.IMPUVals) > 0 {
		e[AttrIMPU] = append([]string(nil), p.IMPUVals...)
	}
	set(AttrHomeRegion, p.HomeRegion)
	set(AttrAuthKey, p.AuthKeyHex)
	e[AttrBarOutgoing] = []string{boolStr(p.Services.BarOutgoing)}
	e[AttrBarPremium] = []string{boolStr(p.Services.BarPremium)}
	e[AttrBarRoaming] = []string{boolStr(p.Services.BarRoaming)}
	set(AttrForwardUncond, p.Services.ForwardUnconditional)
	e[AttrSMSEnabled] = []string{boolStr(p.Services.SMSEnabled)}
	e[AttrIMSEnabled] = []string{boolStr(p.Services.IMSEnabled)}
	set(AttrServingNode, p.Location.ServingNode)
	set(AttrArea, p.Location.Area)
	e[AttrRoaming] = []string{boolStr(p.Location.Roaming)}
	if p.Location.UpdatedAtMicro != 0 {
		e[AttrLocUpdated] = []string{strconv.FormatInt(p.Location.UpdatedAtMicro, 10)}
	}
	return e
}

// FromEntry reconstructs a profile from a stored entry.
func FromEntry(e store.Entry) (*Profile, error) {
	if e.First(AttrObjectClass) != ObjectClass {
		return nil, fmt.Errorf("subscriber: entry is not a %s (objectClass=%q)",
			ObjectClass, e.First(AttrObjectClass))
	}
	p := &Profile{
		ID:         e.First(AttrID),
		IMSIVal:    e.First(AttrIMSI),
		MSISDNVal:  e.First(AttrMSISDN),
		IMPIVal:    e.First(AttrIMPI),
		HomeRegion: e.First(AttrHomeRegion),
		AuthKeyHex: e.First(AttrAuthKey),
		Active:     strBool(e.First(AttrActive)),
	}
	if vs := e[AttrIMPU]; len(vs) > 0 {
		p.IMPUVals = append([]string(nil), vs...)
	}
	if s := e.First(AttrSQN); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("subscriber: bad sqn %q: %v", s, err)
		}
		p.SQN = n
	}
	p.Services = Services{
		BarOutgoing:          strBool(e.First(AttrBarOutgoing)),
		BarPremium:           strBool(e.First(AttrBarPremium)),
		BarRoaming:           strBool(e.First(AttrBarRoaming)),
		ForwardUnconditional: e.First(AttrForwardUncond),
		SMSEnabled:           strBool(e.First(AttrSMSEnabled)),
		IMSEnabled:           strBool(e.First(AttrIMSEnabled)),
	}
	p.Location = Location{
		ServingNode: e.First(AttrServingNode),
		Area:        e.First(AttrArea),
		Roaming:     strBool(e.First(AttrRoaming)),
	}
	if s := e.First(AttrLocUpdated); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("subscriber: bad locUpdatedAt %q: %v", s, err)
		}
		p.Location.UpdatedAtMicro = n
	}
	return p, nil
}

// DN formats the LDAP distinguished name for a subscription ID, and
// ParseDN inverts it. The northbound LDAP interface addresses entries
// by DN while the stores key rows by ID.
func DN(id string) string { return "uid=" + id + ",ou=subscribers,dc=udr" }

// BaseDN is the directory subtree holding all subscriptions.
const BaseDN = "ou=subscribers,dc=udr"

// ParseDN extracts the subscription ID from a DN produced by DN.
func ParseDN(dn string) (string, error) {
	rest, ok := strings.CutPrefix(dn, "uid=")
	if !ok {
		return "", fmt.Errorf("subscriber: DN %q does not start with uid=", dn)
	}
	id, _, ok := strings.Cut(rest, ",")
	if !ok || id == "" {
		return "", fmt.Errorf("subscriber: malformed DN %q", dn)
	}
	return id, nil
}

// Generator produces synthetic subscriber profiles with realistic
// identity shapes, used by workload generation and provisioning.
type Generator struct {
	// MCCMNC is the 5–6 digit network code prefixed to IMSIs.
	MCCMNC string
	// CC is the country code prefixed to MSISDNs.
	CC string
	// Regions are the home regions to round-robin subscriptions
	// across.
	Regions []string
}

// NewGenerator returns a generator with Spanish-network defaults
// (matching the paper's Ericsson Madrid provenance).
func NewGenerator(regions ...string) *Generator {
	if len(regions) == 0 {
		regions = []string{"region0"}
	}
	return &Generator{MCCMNC: "21401", CC: "34", Regions: regions}
}

// Profile builds the n-th synthetic subscriber.
func (g *Generator) Profile(n int) *Profile {
	id := fmt.Sprintf("sub-%08d", n)
	region := g.Regions[n%len(g.Regions)]
	msisdn := fmt.Sprintf("%s6%08d", g.CC, n)
	return &Profile{
		ID:         id,
		IMSIVal:    fmt.Sprintf("%s%09d", g.MCCMNC, n),
		MSISDNVal:  msisdn,
		IMPIVal:    fmt.Sprintf("%s@ims.mnc001.mcc214.3gppnetwork.org", id),
		IMPUVals:   []string{"sip:+" + msisdn + "@ims.example.net", "tel:+" + msisdn},
		HomeRegion: region,
		AuthKeyHex: fmt.Sprintf("%032x", n),
		Active:     true,
		Services: Services{
			SMSEnabled: true,
			IMSEnabled: n%2 == 0, // half the base is IMS-capable
		},
	}
}
