package subscriber

import (
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Profile {
	return &Profile{
		ID:         "sub-00000001",
		IMSIVal:    "21401000000001",
		MSISDNVal:  "34600000001",
		IMPIVal:    "sub-00000001@ims.example.net",
		IMPUVals:   []string{"sip:+34600000001@ims.example.net", "tel:+34600000001"},
		HomeRegion: "eu-south",
		AuthKeyHex: "000102030405060708090a0b0c0d0e0f",
		SQN:        42,
		Active:     true,
		Services: Services{
			BarPremium:           true,
			ForwardUnconditional: "34699999999",
			SMSEnabled:           true,
			IMSEnabled:           true,
		},
		Location: Location{
			ServingNode:    "mme-eu-south",
			Area:           "area-1",
			Roaming:        false,
			UpdatedAtMicro: 1700000000000000,
		},
	}
}

func TestEntryRoundTrip(t *testing.T) {
	p := sample()
	e := p.ToEntry()
	got, err := FromEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID || got.IMSIVal != p.IMSIVal || got.MSISDNVal != p.MSISDNVal {
		t.Fatalf("identities: %+v", got)
	}
	if got.SQN != 42 || !got.Active {
		t.Fatalf("sqn/active: %+v", got)
	}
	if got.Services != p.Services {
		t.Fatalf("services: %+v vs %+v", got.Services, p.Services)
	}
	if got.Location != p.Location {
		t.Fatalf("location: %+v vs %+v", got.Location, p.Location)
	}
	if len(got.IMPUVals) != 2 || got.IMPUVals[1] != "tel:+34600000001" {
		t.Fatalf("impus: %v", got.IMPUVals)
	}
}

func TestFromEntryWrongClass(t *testing.T) {
	e := sample().ToEntry()
	e[AttrObjectClass] = []string{"other"}
	if _, err := FromEntry(e); err == nil {
		t.Fatal("wrong objectClass accepted")
	}
}

func TestFromEntryBadSQN(t *testing.T) {
	e := sample().ToEntry()
	e[AttrSQN] = []string{"not-a-number"}
	if _, err := FromEntry(e); err == nil {
		t.Fatal("bad sqn accepted")
	}
}

func TestIdentitiesComplete(t *testing.T) {
	p := sample()
	ids := p.Identities()
	types := map[IdentityType]int{}
	for _, id := range ids {
		types[id.Type]++
	}
	if types[UID] != 1 || types[IMSI] != 1 || types[MSISDN] != 1 || types[IMPI] != 1 || types[IMPU] != 2 {
		t.Fatalf("identities = %v", ids)
	}
}

func TestIdentitiesSkipEmpty(t *testing.T) {
	p := &Profile{ID: "sub-1", IMSIVal: "123"}
	ids := p.Identities()
	if len(ids) != 2 {
		t.Fatalf("identities = %v", ids)
	}
}

func TestIdentityString(t *testing.T) {
	id := Identity{Type: MSISDN, Value: "34600000001"}
	if id.String() != "MSISDN:34600000001" {
		t.Fatalf("string = %q", id)
	}
}

func TestDNRoundTrip(t *testing.T) {
	dn := DN("sub-00000042")
	if !strings.HasPrefix(dn, "uid=sub-00000042,") {
		t.Fatalf("dn = %q", dn)
	}
	id, err := ParseDN(dn)
	if err != nil || id != "sub-00000042" {
		t.Fatalf("parse: %q %v", id, err)
	}
}

func TestParseDNErrors(t *testing.T) {
	for _, bad := range []string{"", "cn=x,dc=udr", "uid=", "uid=x"} {
		if _, err := ParseDN(bad); err == nil {
			t.Errorf("ParseDN(%q) accepted", bad)
		}
	}
}

func TestDNRoundTripProperty(t *testing.T) {
	f := func(raw string) bool {
		// IDs never contain commas in our scheme; normalize.
		id := strings.ReplaceAll(raw, ",", "")
		if id == "" {
			return true
		}
		got, err := ParseDN(DN(id))
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterministicAndUnique(t *testing.T) {
	g := NewGenerator("eu", "us")
	a1, a2 := g.Profile(7), g.Profile(7)
	if a1.ID != a2.ID || a1.IMSIVal != a2.IMSIVal {
		t.Fatal("generator not deterministic")
	}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		p := g.Profile(i)
		for _, id := range p.Identities() {
			k := id.String()
			if seen[k] {
				t.Fatalf("duplicate identity %s", k)
			}
			seen[k] = true
		}
	}
}

func TestGeneratorRegionsRoundRobin(t *testing.T) {
	g := NewGenerator("a", "b", "c")
	counts := map[string]int{}
	for i := 0; i < 30; i++ {
		counts[g.Profile(i).HomeRegion]++
	}
	for _, r := range []string{"a", "b", "c"} {
		if counts[r] != 10 {
			t.Fatalf("region %s = %d", r, counts[r])
		}
	}
}

func TestGeneratorEntryRoundTrip(t *testing.T) {
	g := NewGenerator("eu")
	for i := 0; i < 10; i++ {
		p := g.Profile(i)
		got, err := FromEntry(p.ToEntry())
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != p.ID || len(got.IMPUVals) != len(p.IMPUVals) {
			t.Fatalf("round trip %d: %+v", i, got)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(n uint16, sqn uint32, active, barOut, barPrem bool) bool {
		g := NewGenerator("r1", "r2")
		p := g.Profile(int(n))
		p.SQN = uint64(sqn)
		p.Active = active
		p.Services.BarOutgoing = barOut
		p.Services.BarPremium = barPrem
		got, err := FromEntry(p.ToEntry())
		if err != nil {
			return false
		}
		return got.SQN == p.SQN && got.Active == p.Active &&
			got.Services.BarOutgoing == barOut && got.Services.BarPremium == barPrem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityTypeString(t *testing.T) {
	for ty, want := range map[IdentityType]string{
		IMSI: "IMSI", MSISDN: "MSISDN", IMPU: "IMPU", IMPI: "IMPI", UID: "UID",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q", int(ty), ty.String())
		}
	}
}
