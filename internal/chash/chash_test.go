package chash

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestEmptyRing(t *testing.T) {
	r := New(64)
	if got := r.Locate("key"); got != "" {
		t.Fatalf("Locate on empty ring = %q", got)
	}
	if got := r.LocateN("key", 2); got != nil {
		t.Fatalf("LocateN on empty ring = %v", got)
	}
	if r.Size() != 0 {
		t.Fatalf("Size = %d", r.Size())
	}
}

func TestSingleMemberOwnsEverything(t *testing.T) {
	r := New(64)
	r.Add("only")
	for i := 0; i < 100; i++ {
		if got := r.Locate(fmt.Sprintf("key-%d", i)); got != "only" {
			t.Fatalf("Locate = %q, want only", got)
		}
	}
}

func TestLocateDeterministic(t *testing.T) {
	r := New(64)
	for _, m := range []string{"a", "b", "c"} {
		r.Add(m)
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r.Locate(k) != r.Locate(k) {
			t.Fatalf("Locate(%q) not deterministic", k)
		}
	}
}

func TestAddIdempotent(t *testing.T) {
	r := New(16)
	r.Add("a")
	r.Add("a")
	if r.Size() != 1 {
		t.Fatalf("Size = %d after duplicate add", r.Size())
	}
	if len(r.hashes) != 16 {
		t.Fatalf("virtual nodes = %d, want 16", len(r.hashes))
	}
}

func TestRemove(t *testing.T) {
	r := New(64)
	r.Add("a")
	r.Add("b")
	r.Remove("a")
	if r.Size() != 1 {
		t.Fatalf("Size = %d", r.Size())
	}
	for i := 0; i < 50; i++ {
		if got := r.Locate(fmt.Sprintf("key-%d", i)); got != "b" {
			t.Fatalf("Locate after remove = %q", got)
		}
	}
	r.Remove("missing") // no-op
}

func TestMinimalDisruption(t *testing.T) {
	// Consistent hashing's defining property: adding a member moves
	// only a fraction of keys.
	r := New(128)
	members := []string{"a", "b", "c", "d"}
	for _, m := range members {
		r.Add(m)
	}
	const keys = 2000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Locate(k)
	}
	r.Add("e")
	moved := 0
	for k, owner := range before {
		got := r.Locate(k)
		if got != owner {
			if got != "e" {
				t.Fatalf("key %q moved to %q, not the new member", k, got)
			}
			moved++
		}
	}
	// Expect roughly 1/5 of keys to move; allow wide tolerance.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("moved %d of %d keys; expected ~%d", moved, keys, keys/5)
	}
}

func TestBalance(t *testing.T) {
	r := New(256)
	members := []string{"a", "b", "c", "d"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[r.Locate(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.0f%% of keys; want roughly 25%%", m, share*100)
		}
	}
}

func TestLocateN(t *testing.T) {
	r := New(64)
	for _, m := range []string{"a", "b", "c"} {
		r.Add(m)
	}
	got := r.LocateN("some-key", 2)
	if len(got) != 2 {
		t.Fatalf("LocateN = %v", got)
	}
	if got[0] == got[1] {
		t.Fatalf("LocateN returned duplicate members: %v", got)
	}
	if got[0] != r.Locate("some-key") {
		t.Fatal("first of LocateN should equal Locate")
	}
	all := r.LocateN("some-key", 10)
	if len(all) != 3 {
		t.Fatalf("LocateN clamped = %v", all)
	}
}

func TestMembersSorted(t *testing.T) {
	r := New(8)
	for _, m := range []string{"c", "a", "b"} {
		r.Add(m)
	}
	ms := r.Members()
	if len(ms) != 3 || ms[0] != "a" || ms[2] != "c" {
		t.Fatalf("Members = %v", ms)
	}
}

func TestLocateAlwaysReturnsMemberProperty(t *testing.T) {
	r := New(64)
	for _, m := range []string{"m0", "m1", "m2", "m3", "m4"} {
		r.Add(m)
	}
	valid := map[string]bool{"m0": true, "m1": true, "m2": true, "m3": true, "m4": true}
	f := func(key string) bool {
		return valid[r.Locate(key)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
