// Package chash implements consistent hashing with virtual nodes.
//
// The paper (§3.5) discusses consistent hashing as the O(1)
// alternative to the UDR's state-full identity-location maps, and
// rejects it because the UDR must support multiple indexes (one per
// subscriber identity) and selective placement. Experiment E8 uses
// this package as the baseline the location stage is compared against.
package chash

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring. It is safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int // virtual nodes per member
	hashes   []uint64
	members  map[uint64]string // hash -> member
	set      map[string]bool
}

// New returns a ring with the given number of virtual nodes per
// member. replicas must be >= 1; typical values are 64–512.
func New(replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	return &Ring{
		replicas: replicas,
		members:  make(map[uint64]string),
		set:      make(map[string]bool),
	}
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV distributes poorly for very short keys (virtual-node
	// labels); a splitmix64-style finalizer restores avalanche.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member into the ring. Adding an existing member is a
// no-op.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.set[member] {
		return
	}
	r.set[member] = true
	for i := 0; i < r.replicas; i++ {
		h := hashKey(fmt.Sprintf("%s#%d", member, i))
		r.members[h] = member
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a member and all of its virtual nodes.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.set[member] {
		return
	}
	delete(r.set, member)
	keep := r.hashes[:0]
	for _, h := range r.hashes {
		if r.members[h] == member {
			delete(r.members, h)
		} else {
			keep = append(keep, h)
		}
	}
	r.hashes = keep
}

// Members returns the current members in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.set))
	for m := range r.set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Locate returns the member owning key, or "" if the ring is empty.
// Cost is O(log V) in the number of virtual nodes — constant in the
// number of keys, which is the property E8 contrasts with the
// O(log N)-in-subscribers location maps.
func (r *Ring) Locate(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.members[r.hashes[i]]
}

// LocateN returns the first n distinct members encountered clockwise
// from key's position: the natural replica set for the key.
func (r *Ring) LocateN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.set) {
		n = len(r.set)
	}
	h := hashKey(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for j := 0; j < len(r.hashes) && len(out) < n; j++ {
		m := r.members[r.hashes[(i+j)%len(r.hashes)]]
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.set)
}
