package consistency

import (
	"context"
	"flag"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/replication"
)

// chaosLong unlocks the soak profile: bigger population, more
// operations, more fault slots. Run with:
//
//	go test ./internal/consistency/ -run TestChaosSoak -chaos.long -v
var chaosLong = flag.Bool("chaos.long", false, "run the long chaos soak profile")

// dumpOnFail writes the reproducer bundle when a chaos test failed and
// CHAOS_REPRO_DIR is set (the CI chaos-smoke job uploads it).
func dumpOnFail(t *testing.T, res *Result) {
	t.Helper()
	if !t.Failed() || res == nil {
		return
	}
	dir := os.Getenv("CHAOS_REPRO_DIR")
	if dir == "" {
		return
	}
	path, err := res.WriteReproducer(dir)
	if err != nil {
		t.Logf("reproducer dump failed: %v", err)
		return
	}
	t.Logf("reproducer written to %s", path)
}

// TestChaosDeterminism is the CI determinism gate: the same seed must
// produce a byte-identical fault schedule and a byte-identical
// operation history across two full runs — including WAL-backed
// crash-restart events. This is what makes every failure its own
// reproducer.
func TestChaosDeterminism(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig(1)
	cfg.Ops = 160

	run := func(walDir string) *Result {
		c := cfg
		c.WALDir = walDir
		res, err := Run(ctx, c)
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		return res
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	defer dumpOnFail(t, a)

	if as, bs := a.Schedule.String(), b.Schedule.String(); as != bs {
		t.Errorf("schedules differ:\n--- run A ---\n%s--- run B ---\n%s", as, bs)
	}
	if ah, bh := a.History.String(), b.History.String(); ah != bh {
		t.Errorf("histories differ (schedule identical: %v)", a.Schedule.String() == b.Schedule.String())
		diffFirstLine(t, ah, bh)
	}
	if t.Failed() {
		return
	}
	// The applied-event log (promotions, repair traffic, recoveries)
	// must match too: it is part of the reproducer.
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event logs differ in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs:\nA: %s\nB: %s", i, a.Events[i], b.Events[i])
		}
	}
}

func diffFirstLine(t *testing.T, a, b string) {
	t.Helper()
	al, bl := splitLines(a), splitLines(b)
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			t.Logf("first diff at line %d:\nA: %s\nB: %s", i, al[i], bl[i])
			return
		}
	}
	t.Logf("histories are prefix-equal; lengths %d vs %d lines", len(al), len(bl))
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestChaosSyncAllLinearizable pins the strong end of the CAP
// trade-off: with sync-all replication durability, every acknowledged
// write is on every replica before the commit returns, so failovers
// lose nothing and the master path must be linearizable per key — no
// matter what the fault schedule did. Convergence must hold too.
func TestChaosSyncAllLinearizable(t *testing.T) {
	ctx := context.Background()
	var res *Result
	defer func() { dumpOnFail(t, res) }()
	for _, seed := range []int64{1, 2, 3} {
		cfg := DefaultConfig(seed)
		cfg.Ops = 400
		cfg.FaultMin, cfg.FaultMax = 6, 14
		cfg.Durability = replication.SyncAll
		cfg.WALDir = t.TempDir()
		var err error
		res, err = Run(ctx, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.LinViolations != 0 {
			for _, lr := range res.Lin {
				if !lr.Linearizable {
					t.Errorf("seed %d: key %s (%d ops) not linearizable", seed, lr.Key, lr.Ops)
				}
			}
			t.Fatalf("seed %d: %d linearizability violations under sync-all", seed, res.LinViolations)
		}
		if !res.Converged {
			t.Fatalf("seed %d: replicas did not converge: %v", seed, res.Diverged)
		}
	}
}

// TestChaosQuorumLinearizable pins the middle of the durability
// spectrum: with majority-quorum commits, every acknowledged write is
// on the master plus at least one slave, and failover promotes the
// most-caught-up live slave — which, because the replication stream is
// CSN-ordered (slave states are prefixes), holds every quorum-acked
// write. The master path must therefore stay linearizable per key at
// median-replica commit latency, not sync-all's max.
func TestChaosQuorumLinearizable(t *testing.T) {
	ctx := context.Background()
	var res *Result
	defer func() { dumpOnFail(t, res) }()
	for _, seed := range []int64{1, 2, 3} {
		cfg := DefaultConfig(seed)
		cfg.Ops = 400
		cfg.FaultMin, cfg.FaultMax = 6, 14
		cfg.Durability = replication.Quorum
		cfg.WALDir = t.TempDir()
		var err error
		res, err = Run(ctx, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.LinViolations != 0 {
			for _, lr := range res.Lin {
				if !lr.Linearizable {
					t.Errorf("seed %d: key %s (%d ops) not linearizable", seed, lr.Key, lr.Ops)
				}
			}
			t.Fatalf("seed %d: %d linearizability violations under quorum", seed, res.LinViolations)
		}
		if !res.Converged {
			t.Fatalf("seed %d: replicas did not converge: %v", seed, res.Diverged)
		}
		// Per-hop attribution invariant: every successful quorum
		// ack-wait span must cover its slowest counted peer send.
		if res.Trace.Traces == 0 {
			t.Fatalf("seed %d: rate-1 recorder captured no traces", seed)
		}
		if res.Trace.AckWaitsChecked == 0 {
			t.Fatalf("seed %d: no quorum ack-wait spans to check (of %d traces)", seed, res.Trace.Traces)
		}
		if res.Trace.AckWaitViolations != 0 {
			t.Fatalf("seed %d: %d of %d ack-wait spans shorter than their slowest counted send",
				seed, res.Trace.AckWaitViolations, res.Trace.AckWaitsChecked)
		}
	}
}

// TestChaosQuorumDeterminism holds the quorum profile to the same
// reproducer bar as the default profile: same seed, byte-identical
// schedule, history and applied-event log across two full runs.
func TestChaosQuorumDeterminism(t *testing.T) {
	ctx := context.Background()
	run := func() *Result {
		cfg := DefaultConfig(2)
		cfg.Ops = 160
		cfg.Durability = replication.Quorum
		cfg.WALDir = t.TempDir()
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		return res
	}
	a := run()
	b := run()
	defer dumpOnFail(t, a)
	if as, bs := a.Schedule.String(), b.Schedule.String(); as != bs {
		t.Errorf("schedules differ:\n--- run A ---\n%s--- run B ---\n%s", as, bs)
	}
	if ah, bh := a.History.String(), b.History.String(); ah != bh {
		t.Errorf("histories differ (schedule identical: %v)", a.Schedule.String() == b.Schedule.String())
		diffFirstLine(t, ah, bh)
	}
	if t.Failed() {
		return
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event logs differ in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs:\nA: %s\nB: %s", i, a.Events[i], b.Events[i])
		}
	}
}

// TestChaosAsyncMeasuresGap pins the weak end: the paper's default
// asynchronous replication leaves a durability gap at failover, and
// the checker must detect the resulting lost acknowledged writes as
// linearizability violations. Convergence must still hold after the
// final heal + repair — divergence is transient by design.
func TestChaosAsyncMeasuresGap(t *testing.T) {
	ctx := context.Background()
	var res *Result
	defer func() { dumpOnFail(t, res) }()

	// Seeds chosen so at least one schedule isolates a master with
	// acknowledged tail writes and then fails over (verified by the
	// assertion below: the point of the test is that the checker SEES
	// the documented loss, so schedules without loss assert nothing).
	violations := 0
	for _, seed := range []int64{1, 3, 6} {
		cfg := DefaultConfig(seed)
		cfg.Ops = 400
		cfg.FaultMin, cfg.FaultMax = 6, 14
		cfg.Durability = replication.Async
		cfg.WALDir = t.TempDir()
		var err error
		res, err = Run(ctx, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		violations += res.LinViolations
		if !res.Converged {
			t.Fatalf("seed %d: replicas did not converge: %v", seed, res.Diverged)
		}
	}
	if violations == 0 {
		t.Fatalf("async chaos runs showed no lost acknowledged writes; the checker found nothing to measure (schedules too tame?)")
	}
	t.Logf("async linearizability violations over 3 seeds: %d (the §3.3.1 durability gap, made visible)", violations)
}

// TestChaosSessionGuarantees exercises the slave-read measurement: FE
// reads during partitions must show staleness (that is the PA/EL
// trade-off working), and the staleness bound must be finite and
// reported.
func TestChaosSessionGuarantees(t *testing.T) {
	ctx := context.Background()
	var res *Result
	defer func() { dumpOnFail(t, res) }()
	cfg := DefaultConfig(4)
	cfg.Ops = 400
	var err error
	res, err = Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Session
	if s.SlaveReads == 0 {
		t.Fatal("no slave reads driven; FE policy routing broken?")
	}
	t.Logf("slave reads=%d stale=%d ryw=%d monotonic=%d maxStale=%d mean=%.2f",
		s.SlaveReads, s.StaleReads, s.RYWViolations, s.MonotonicViolations,
		s.MaxStaleness, s.MeanStaleness)
	if s.StaleReads > 0 && s.MaxStaleness == 0 {
		t.Fatal("stale reads counted but no staleness bound measured")
	}
	if !res.Converged {
		t.Fatalf("replicas did not converge: %v", res.Diverged)
	}
}

// TestChaosFECacheSessionGuarantees is the PR-7 acceptance gate: with
// the FE/PoA read cache enabled, FE reads must flow through it
// (CachedReads > 0) and the cache's floors, warm-source gating and
// epoch guards must keep the per-client session guarantees intact —
// zero read-your-writes and zero monotonic-read violations — across
// the same partition/heal/failover schedule that measures nonzero
// staleness without the cache.
func TestChaosFECacheSessionGuarantees(t *testing.T) {
	ctx := context.Background()
	var res *Result
	defer func() { dumpOnFail(t, res) }()
	cached := 0
	for _, seed := range []int64{1, 4, 6} {
		cfg := DefaultConfig(seed)
		cfg.Ops = 400
		cfg.FECache = true
		var err error
		res, err = Run(ctx, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := res.Session
		if s.RYWViolations != 0 || s.MonotonicViolations != 0 {
			t.Fatalf("seed %d: session violations through the cache: ryw=%d monotonic=%d (cached=%d slave=%d)",
				seed, s.RYWViolations, s.MonotonicViolations, s.CachedReads, s.SlaveReads)
		}
		cached += s.CachedReads
		t.Logf("seed %d: cached=%d slave=%d stale=%d maxStale=%d",
			seed, s.CachedReads, s.SlaveReads, s.StaleReads, s.MaxStaleness)
		if !res.Converged {
			t.Fatalf("seed %d: replicas did not converge: %v", seed, res.Diverged)
		}
	}
	if cached == 0 {
		t.Fatal("no reads served from the FE cache; the cache path is not wired")
	}
}

// TestChaosFECacheCrashRestart adds WAL-backed crash-restart events to
// the cache runs: recovery re-wires the install observers on the
// rebuilt stores, and the session bar must hold across the restarts.
func TestChaosFECacheCrashRestart(t *testing.T) {
	ctx := context.Background()
	var res *Result
	defer func() { dumpOnFail(t, res) }()
	cached := 0
	for _, seed := range []int64{2, 5} {
		cfg := DefaultConfig(seed)
		cfg.Ops = 400
		cfg.WALDir = t.TempDir()
		cfg.FECache = true
		var err error
		res, err = Run(ctx, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := res.Session
		if s.RYWViolations != 0 || s.MonotonicViolations != 0 {
			t.Fatalf("seed %d: session violations through the cache: ryw=%d monotonic=%d (cached=%d slave=%d)",
				seed, s.RYWViolations, s.MonotonicViolations, s.CachedReads, s.SlaveReads)
		}
		cached += s.CachedReads
		if !res.Converged {
			t.Fatalf("seed %d: replicas did not converge: %v", seed, res.Diverged)
		}
	}
	if cached == 0 {
		t.Fatal("no reads served from the FE cache across the crash-restart runs")
	}
}

// TestChaosCheckpointCrashRestart folds incremental checkpoints into
// the fault schedule: an element checkpoints (image + log prune) while
// client traffic keeps committing, then later crashes and restarts —
// so recovery runs from a snapshot image plus a log suffix instead of
// a whole-log replay. The bar is unchanged: zero linearizability
// violations under sync-all and full convergence. The test insists at
// least one run actually crossed the boundary (a completed checkpoint
// on an element that subsequently crashed); otherwise the recovery
// path under test never executed.
func TestChaosCheckpointCrashRestart(t *testing.T) {
	ctx := context.Background()
	var res *Result
	defer func() { dumpOnFail(t, res) }()
	crossed := 0
	for _, seed := range []int64{1, 2, 3, 5, 8} {
		cfg := DefaultConfig(seed)
		cfg.Ops = 400
		cfg.FaultMin, cfg.FaultMax = 6, 14
		cfg.Durability = replication.SyncAll
		cfg.WALDir = t.TempDir()
		cfg.Checkpoints = true
		var err error
		res, err = Run(ctx, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.LinViolations != 0 {
			for _, lr := range res.Lin {
				if !lr.Linearizable {
					t.Errorf("seed %d: key %s (%d ops) not linearizable", seed, lr.Key, lr.Ops)
				}
			}
			t.Fatalf("seed %d: %d linearizability violations with checkpoints", seed, res.LinViolations)
		}
		if !res.Converged {
			t.Fatalf("seed %d: replicas did not converge: %v", seed, res.Diverged)
		}
		// Did a crash land on an element that had already completed a
		// checkpoint? That is the image-plus-suffix recovery path.
		ckpted := map[string]bool{}
		for _, ev := range res.Events {
			if strings.Contains(ev, "kind=checkpoint") && strings.Contains(ev, "replicas=") {
				if el, ok := eventField(ev, "el="); ok {
					ckpted[el] = true
				}
			}
			if strings.Contains(ev, "kind=crash") {
				if el, ok := eventField(ev, "el="); ok && ckpted[el] {
					crossed++
				}
			}
		}
	}
	if crossed == 0 {
		t.Fatal("no run crashed an element after a completed checkpoint; recovery never crossed a checkpoint boundary")
	}
}

// eventField extracts the space-terminated value of key (e.g. "el=")
// from an applied-event line.
func eventField(ev, key string) (string, bool) {
	i := strings.Index(ev, key)
	if i < 0 {
		return "", false
	}
	v := ev[i+len(key):]
	if j := strings.IndexByte(v, ' '); j >= 0 {
		v = v[:j]
	}
	return v, v != ""
}

// TestChaosFECacheMigrate folds live migrations into the cache runs:
// a cutover bumps the placement epoch on every PoA, which must guard
// (not serve) every resident entry of the moved partition until a
// new-lineage write replaces it. Same zero-violation bar.
func TestChaosFECacheMigrate(t *testing.T) {
	ctx := context.Background()
	var res *Result
	defer func() { dumpOnFail(t, res) }()
	cached, moved := 0, 0
	for _, seed := range []int64{1, 2, 3} {
		cfg := DefaultConfig(seed)
		cfg.Ops = 300
		cfg.FaultMin, cfg.FaultMax = 6, 14
		cfg.WALDir = t.TempDir()
		cfg.Migrations = true
		cfg.FECache = true
		var err error
		res, err = Run(ctx, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := res.Session
		if s.RYWViolations != 0 || s.MonotonicViolations != 0 {
			t.Fatalf("seed %d: session violations through the cache: ryw=%d monotonic=%d (cached=%d slave=%d)",
				seed, s.RYWViolations, s.MonotonicViolations, s.CachedReads, s.SlaveReads)
		}
		cached += s.CachedReads
		if !res.Converged {
			t.Fatalf("seed %d: replicas did not converge: %v", seed, res.Diverged)
		}
		for _, ev := range res.Events {
			if strings.Contains(ev, "kind=migrate") && strings.Contains(ev, " rows=") {
				moved++
			}
		}
	}
	if cached == 0 {
		t.Fatal("no reads served from the FE cache across the migration runs")
	}
	if moved == 0 {
		t.Fatal("no migration completed; the schedules never moved a master under the cache")
	}
}

// TestChaosFECacheDeterminism extends the determinism gate to the
// cache path: hits, fills, floors and epoch guards all sit on the
// serving path now, so the history (including which reads were served
// with Role=cached) must still be a pure function of the seed.
func TestChaosFECacheDeterminism(t *testing.T) {
	ctx := context.Background()
	run := func(walDir string) *Result {
		cfg := DefaultConfig(3)
		cfg.Ops = 200
		cfg.WALDir = walDir
		cfg.FECache = true
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		return res
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	defer dumpOnFail(t, a)
	if as, bs := a.Schedule.String(), b.Schedule.String(); as != bs {
		t.Errorf("schedules differ:\n--- run A ---\n%s--- run B ---\n%s", as, bs)
	}
	if ah, bh := a.History.String(), b.History.String(); ah != bh {
		t.Errorf("histories differ")
		diffFirstLine(t, ah, bh)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event logs differ in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs:\nA: %s\nB: %s", i, a.Events[i], b.Events[i])
		}
	}
	if a.Session.CachedReads == 0 {
		t.Fatal("determinism run drove no cached reads")
	}
}

// TestChaosMigrate folds live partition migration into the chaos
// schedule: under sync-all durability the linearizability and
// convergence bar must hold unchanged while masters move between
// storage elements mid-history — including migrations fired across an
// open backbone cut, which must abort and leave the source
// authoritative. The seed set is chosen so both outcomes actually
// occur; the assertions below keep that honest.
func TestChaosMigrate(t *testing.T) {
	ctx := context.Background()
	var res *Result
	defer func() { dumpOnFail(t, res) }()
	moved, aborted := 0, 0
	for _, seed := range []int64{1, 2, 3, 4} {
		cfg := DefaultConfig(seed)
		cfg.Ops = 300
		cfg.FaultMin, cfg.FaultMax = 6, 14
		cfg.Durability = replication.SyncAll
		cfg.WALDir = t.TempDir()
		cfg.Migrations = true
		var err error
		res, err = Run(ctx, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.LinViolations != 0 {
			t.Fatalf("seed %d: %d linearizability violations under sync-all with migrations", seed, res.LinViolations)
		}
		if !res.Converged {
			t.Fatalf("seed %d: replicas did not converge: %v", seed, res.Diverged)
		}
		for _, ev := range res.Events {
			if strings.Contains(ev, "kind=migrate") {
				switch {
				case strings.Contains(ev, " rows="):
					moved++
				case strings.Contains(ev, " aborted "):
					aborted++
				}
			}
		}
	}
	t.Logf("migrations over 4 seeds: %d completed, %d aborted", moved, aborted)
	if moved == 0 {
		t.Fatal("no migration completed; the schedules never exercised a live cutover")
	}
	if aborted == 0 {
		t.Fatal("no migration aborted; the schedules never exercised the abort path")
	}
}

// TestChaosMigrateDeterminism extends the determinism gate to migrate
// events: target resolution depends on the evolving hosting map, and
// it must still be a pure function of seed + schedule prefix.
func TestChaosMigrateDeterminism(t *testing.T) {
	ctx := context.Background()
	run := func(walDir string) *Result {
		cfg := DefaultConfig(2)
		cfg.Ops = 200
		cfg.Durability = replication.Async
		cfg.WALDir = walDir
		cfg.Migrations = true
		res, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		return res
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	defer dumpOnFail(t, a)
	if as, bs := a.Schedule.String(), b.Schedule.String(); as != bs {
		t.Errorf("schedules differ:\n--- run A ---\n%s--- run B ---\n%s", as, bs)
	}
	if ah, bh := a.History.String(), b.History.String(); ah != bh {
		t.Errorf("histories differ")
		diffFirstLine(t, ah, bh)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event logs differ in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs:\nA: %s\nB: %s", i, a.Events[i], b.Events[i])
		}
	}
}

// TestChaosSoak is the -chaos.long profile: a much longer seeded run
// with crash-restarts, more clients and a denser fault schedule. Same
// checks, bigger surface.
func TestChaosSoak(t *testing.T) {
	if !*chaosLong {
		t.Skip("soak profile: run with -chaos.long")
	}
	ctx := context.Background()
	var res *Result
	defer func() { dumpOnFail(t, res) }()
	for _, durability := range []replication.Durability{replication.Async, replication.SyncAll} {
		for seed := int64(1); seed <= 5; seed++ {
			cfg := Config{
				Seed:          seed,
				Ops:           2000,
				Subscribers:   60,
				Clients:       12,
				Durability:    durability,
				WALDir:        t.TempDir(),
				FaultMin:      6,
				FaultMax:      16,
				SettleTimeout: 30 * time.Second,
			}
			var err error
			res, err = Run(ctx, cfg)
			if err != nil {
				t.Fatalf("durability=%s seed=%d: %v", durability, seed, err)
			}
			if durability == replication.SyncAll && res.LinViolations != 0 {
				t.Fatalf("durability=sync-all seed=%d: %d linearizability violations",
					seed, res.LinViolations)
			}
			if !res.Converged {
				t.Fatalf("durability=%s seed=%d: diverged: %v", durability, seed, res.Diverged)
			}
			t.Logf("durability=%s seed=%d: ops=%d linViol=%d slaveReads=%d maxStale=%d",
				durability, seed, res.History.Len(), res.LinViolations,
				res.Session.SlaveReads, res.Session.MaxStaleness)
		}
	}
}

// TestReproducerBundle pins the reproducer format the CI chaos-smoke
// job uploads: config line, full schedule, applied-event log and the
// complete op history, byte-stable.
func TestReproducerBundle(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Ops = 60
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path, err := res.WriteReproducer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"chaos reproducer",
		"seed=9 ops=60",
		"schedule seed=9",
		"op id=0 ",
		"op id=59 ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("reproducer missing %q:\n%s", want, text[:min(len(text), 600)])
		}
	}
	// Replaying the bundle's seed must regenerate it byte-identically.
	res2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reproducer() != text {
		t.Fatal("replaying the reproducer's config did not regenerate it byte-identically")
	}
}
