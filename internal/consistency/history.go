// Package consistency turns the repository's subsystems — store, WAL,
// replication, anti-entropy, cluster failover — into falsifiable test
// subjects: a seeded, deterministic chaos harness drives randomized
// client operations against a simnet UDR while a fault schedule
// injects partitions, failovers, crash-restarts (real WAL recovery)
// and anti-entropy repairs, recording a timestamped operation history;
// checkers then validate that history against explicit models:
//
//   - per-key linearizability on the master path (Wing & Gong graph
//     search with pruning — tractable because histories are
//     per-subscriber, see linearize.go),
//   - read-your-writes / monotonic-reads session guarantees on slave
//     reads, with a measured staleness bound (session.go),
//   - eventual convergence: after the final heal and repair, every
//     replica of every partition agrees row for row (harness.go).
//
// The same seed reproduces the same fault schedule, the same operation
// stream and — in the deterministic profile — a byte-identical history,
// so a failing run is its own minimal reproducer (seed + schedule).
package consistency

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/locator"
	"repro/internal/simnet"
	"repro/internal/store"
)

// OpKind enumerates the client operations the harness drives.
type OpKind int

// Client operation kinds.
const (
	// OpRead fetches the chaos attribute of a subscriber row.
	OpRead OpKind = iota
	// OpWrite replaces the chaos attribute with a unique value.
	OpWrite
	// OpCAS executes [compare(attr, expect), replace(attr, new)] as
	// one storage-element transaction: an atomic fetch-compare-and-set
	// whose response reports whether the pre-state matched. The write
	// applies unconditionally — exactly the semantics the SE's
	// one-shot transaction gives, and exactly what the checker models.
	OpCAS
	// OpDelete removes the subscriber row (a tombstone at the store).
	OpDelete
)

// String returns the op kind name.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// pendingTime is the Return timestamp of an operation that never got a
// response: it stays open until the end of the history.
const pendingTime = int64(math.MaxInt64)

// Op is one recorded client operation: the invocation (what was
// asked, when) and the response (what came back, when). Logical
// timestamps come from the recorder's clock; an operation with
// Ok=false has Return set to when the error was observed — the window
// still bounds any effect the operation may have had, because the
// simulated network never executes a handler after the call returned.
type Op struct {
	ID     int
	Client int
	Site   string
	Policy core.Policy
	Kind   OpKind
	Key    string // subscriber ID
	Arg    string // written value (write / cas)
	Expect string // cas expected pre-value

	Invoke int64
	Return int64

	// Response.
	Ok        bool   // response received
	ErrClass  string // stable error class when !Ok
	Found     bool
	Value     string // chaos attribute value read
	CompareOK bool
	CSN       uint64
	Role      store.Role

	// Server-side attribution (SE TxnObserver): for operations whose
	// response was lost, ServerSeen+ServerCSN report whether and with
	// which CSN the transaction actually committed.
	ServerSeen bool
	ServerCSN  uint64
}

// effectful reports whether the operation changed (or may have
// changed) the row: an acknowledged write/cas/delete, or one whose
// commit the server observer attributed despite the lost response.
func (o *Op) effectful() bool {
	if o.Kind == OpRead {
		return false
	}
	return o.Ok || (o.ServerSeen && o.ServerCSN > 0)
}

// indeterminate reports an operation whose client saw an error but
// whose effect is unknown (no server-side attribution either). Such
// operations may or may not have taken place; with the SE observer
// attached they only arise when the request never reached the element.
func (o *Op) indeterminate() bool {
	return !o.Ok && !o.ServerSeen
}

// format renders the op as one stable history line. Every field is
// explicitly formatted so two equal histories are byte-identical.
func (o *Op) format(b *strings.Builder) {
	fmt.Fprintf(b,
		"op id=%d c=%d site=%s pol=%s kind=%s key=%s arg=%s exp=%s inv=%d ret=%d ok=%t err=%s found=%t val=%s cok=%t csn=%d role=%s ssn=%t scsn=%d\n",
		o.ID, o.Client, o.Site, o.Policy, o.Kind, o.Key, o.Arg, o.Expect,
		o.Invoke, ret64(o.Return), o.Ok, o.ErrClass, o.Found, o.Value,
		o.CompareOK, o.CSN, o.Role, o.ServerSeen, o.ServerCSN)
}

func ret64(v int64) int64 {
	if v == pendingTime {
		return -1
	}
	return v
}

// History is the recorded operation log, in completion order.
type History struct {
	mu    sync.Mutex
	clock int64
	ops   []*Op
	// serverCSN maps an op tag to the CSN the SE observer attributed.
	serverCSN map[string]uint64
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{serverCSN: make(map[string]uint64)}
}

// Len returns the number of recorded operations.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}

// Ops returns the recorded operations in completion order.
func (h *History) Ops() []*Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Op(nil), h.ops...)
}

// tick advances the logical clock.
func (h *History) tick() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clock++
	return h.clock
}

// add appends a completed op.
func (h *History) add(o *Op) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ops = append(h.ops, o)
}

// attribute records a server-observed commit for an op tag.
func (h *History) attribute(tag string, csn uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.serverCSN[tag] = csn
}

// resolve back-fills server attribution into lost-response ops.
func (h *History) resolve() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, o := range h.ops {
		if o.Ok {
			continue
		}
		if csn, ok := h.serverCSN[opTag(o.ID)]; ok {
			o.ServerSeen = true
			o.ServerCSN = csn
		}
	}
}

// String renders the full history, one line per op, byte-stable.
func (h *History) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	for _, o := range h.ops {
		o.format(&b)
	}
	return b.String()
}

// opTag labels an operation for server-side attribution.
func opTag(id int) string { return fmt.Sprintf("chaos-%d", id) }

// errClass maps an error onto a stable token so histories stay
// byte-identical across runs (wrapped messages may embed peer
// addresses or timeouts that vary in text, never in class).
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrMasterUnreachable):
		return "master-unreachable"
	case errors.Is(err, core.ErrNoReplica):
		return "no-replica"
	case errors.Is(err, core.ErrUnknownSubscriber), errors.Is(err, locator.ErrNotFound):
		return "unknown-subscriber"
	case errors.Is(err, simnet.ErrUnreachable):
		return "unreachable"
	case errors.Is(err, simnet.ErrLost):
		return "lost"
	case errors.Is(err, store.ErrStoreFull):
		return "store-full"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "other"
	}
}
