// Session-guarantee checking for slave reads. The paper's front-end
// class deliberately trades consistency for latency and availability:
// FE reads may be served by slave copies (§3.3.2), so read-your-writes
// and monotonic reads are NOT contractual — what the design promises
// instead is a bounded staleness window. This checker therefore
// *measures*: it counts the session-guarantee violations slave reads
// exhibit and reports the staleness bound actually observed, in
// versions behind the acknowledged write frontier of the key.
//
// The measurement leans on a harness invariant: every key has a single
// writer client, so the acknowledged writes of a key are totally
// ordered by the history and every unique value maps to one ordinal.
package consistency

import (
	"repro/internal/store"
)

// SessionReport aggregates the session-guarantee measurement.
type SessionReport struct {
	// SlaveReads is the number of successful reads served by slaves.
	SlaveReads int
	// CachedReads is the number of successful reads served by an
	// FE/PoA cache (store.Cached). They are held to the same session
	// guarantees as slave reads — the cache's floors and epoch guards
	// exist precisely so these checks pass.
	CachedReads int
	// StaleReads is how many of them returned a value older than the
	// key's acknowledged write frontier at invocation time.
	StaleReads int
	// RYWViolations counts slave reads that missed a write the same
	// client had already seen acknowledged.
	RYWViolations int
	// MonotonicViolations counts slave reads that went backwards
	// relative to an earlier read by the same client on the same key.
	MonotonicViolations int
	// MaxStaleness is the largest observed lag, in acknowledged
	// versions behind the frontier; MeanStaleness averages over stale
	// reads only.
	MaxStaleness  int
	MeanStaleness float64
	// SkippedNotFound counts slave reads of deleted/absent rows,
	// excluded from ordinal accounting (absent states of different
	// ages are indistinguishable by value).
	SkippedNotFound int
}

// CheckSessions measures session guarantees over the history. It must
// see the history in completion order (which, for the deterministic
// profile, equals invocation order).
func CheckSessions(h *History) SessionReport {
	var rep SessionReport

	// Per-key value → ordinal of the acknowledged write that produced
	// it, and the current acknowledged frontier ordinal.
	ord := make(map[string]map[string]int)
	frontier := make(map[string]int)
	// Per client+key: highest ordinal the client wrote (acked) and
	// highest ordinal it observed by reading.
	type ck struct {
		client int
		key    string
	}
	lastWrote := make(map[ck]int)
	lastRead := make(map[ck]int)

	var staleSum int
	for _, o := range h.Ops() {
		switch o.Kind {
		case OpWrite, OpCAS:
			if !o.effectful() {
				continue // never applied: its value cannot be read
			}
			m := ord[o.Key]
			if m == nil {
				m = make(map[string]int)
				ord[o.Key] = m
			}
			frontier[o.Key]++
			m[o.Arg] = frontier[o.Key]
			if !o.Ok {
				// Applied but unacknowledged: the value is readable
				// (it has an ordinal) but the client cannot expect it.
				continue
			}
			k := ck{o.Client, o.Key}
			if frontier[o.Key] > lastWrote[k] {
				lastWrote[k] = frontier[o.Key]
			}
		case OpDelete:
			// Deletions reset the register; absent reads are skipped
			// below, so no ordinal is assigned.
		case OpRead:
			if !o.Ok || (o.Role != store.Slave && o.Role != store.Cached) {
				// Master reads are authoritative by construction and
				// excluded from the staleness measurement.
				continue
			}
			if o.Role == store.Cached {
				rep.CachedReads++
			} else {
				rep.SlaveReads++
			}
			if !o.Found {
				rep.SkippedNotFound++
				continue
			}
			got, known := ord[o.Key][o.Value]
			if !known {
				// The seeded initial value (or a value only an
				// unacknowledged write produced): ordinal 0.
				got = 0
			}
			lag := frontier[o.Key] - got
			if lag > 0 {
				rep.StaleReads++
				staleSum += lag
				if lag > rep.MaxStaleness {
					rep.MaxStaleness = lag
				}
			}
			k := ck{o.Client, o.Key}
			if got < lastWrote[k] {
				rep.RYWViolations++
			}
			if got < lastRead[k] {
				rep.MonotonicViolations++
			}
			if got > lastRead[k] {
				lastRead[k] = got
			}
		}
	}
	if rep.StaleReads > 0 {
		rep.MeanStaleness = float64(staleSum) / float64(rep.StaleReads)
	}
	return rep
}
