// Per-key linearizability checking (Wing & Gong's algorithm with
// Lowe's memoization). The UDR gives no cross-subscriber guarantees —
// a storage element is the unit of atomicity and every chaos operation
// touches one subscriber row — so the global history factors into
// independent per-key histories. That factoring is what makes the
// search tractable: each per-key history holds at most a few hundred
// operations over a register-like state, and the (linearized-set,
// state) memo collapses the permutation space.
package consistency

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/store"
)

// regState is the model state of one subscriber row's chaos attribute:
// a register that can also be absent (deleted row). val == "" encodes
// "attribute absent" (freshly seeded or recreated rows): harness
// writes are never empty, and an LDAP compare against an absent
// attribute is false for every asserted value including "".
type regState struct {
	exists bool
	val    string
}

// step applies one operation to the model and reports whether the
// recorded response is consistent with firing the operation in state
// s. Operations without a response (lost in the network) impose no
// response constraint — only their state transition counts.
func step(s regState, o *Op) (next regState, match bool) {
	switch o.Kind {
	case OpRead:
		match = o.Found == s.exists && (!s.exists || o.Value == s.val)
		return s, match
	case OpWrite:
		return regState{exists: true, val: o.Arg}, true
	case OpCAS:
		// The SE's one-shot [compare, replace] transaction: the write
		// applies unconditionally; the response reports whether the
		// pre-state matched the expectation. An absent attribute
		// (val == "") compares false against everything.
		match = true
		if o.Ok {
			match = o.CompareOK == (s.exists && s.val != "" && s.val == o.Expect)
		}
		return regState{exists: true, val: o.Arg}, match
	case OpDelete:
		return regState{}, true
	}
	return s, false
}

// LinReport is the outcome of checking one key's history.
type LinReport struct {
	Key string
	// Ops is the number of operations in the checked (master-path)
	// sub-history.
	Ops int
	// Linearizable reports whether a valid linearization exists.
	Linearizable bool
	// Visited counts DFS states explored (search cost diagnostics).
	Visited int
}

// linMaxStates bounds the DFS so a pathological history cannot hang
// the checker; per-subscriber histories never get close.
const linMaxStates = 2_000_000

// linOp is one operation prepared for the search.
type linOp struct {
	op *Op
	// required: must appear in the linearization (it completed, or its
	// effect was attributed server-side). Non-required ops are
	// indeterminate — they may linearize anywhere after invocation or
	// not at all.
	required bool
	// ret is the effective response time. Operations whose client saw
	// an error carry no real-time upper bound even when their effect is
	// server-attributed: the error tells the client nothing about when
	// (or whether) the effect landed, so the op stays open to the end
	// of the history — the standard treatment of indeterminate
	// invocations. This is what lets a failed-but-applied write be
	// legally "resurrected" by a later repair.
	ret int64
}

// CheckKeyLinearizable verifies one key's operation sub-history
// against the register model, starting from the given initial state.
// The ops slice must contain only operations on that key.
func CheckKeyLinearizable(key string, ops []*Op, initial regState) LinReport {
	rep := LinReport{Key: key, Ops: len(ops), Linearizable: true}
	if len(ops) == 0 {
		return rep
	}
	lops := make([]linOp, 0, len(ops))
	for _, o := range ops {
		ret := o.Return
		if !o.Ok {
			ret = pendingTime
		}
		lops = append(lops, linOp{op: o, required: o.Ok || o.effectful(), ret: ret})
	}
	// Deterministic search order: by invocation time.
	sort.Slice(lops, func(i, j int) bool { return lops[i].op.Invoke < lops[j].op.Invoke })

	nWords := (len(lops) + 63) / 64
	seen := make(map[string]bool)
	done := make([]uint64, nWords)

	var visited int
	var dfs func(state regState) bool
	dfs = func(state regState) bool {
		visited++
		if visited > linMaxStates {
			// Treat an exhausted search as a failure: the harness
			// sizes histories so this cannot trigger on honest runs.
			return false
		}
		allRequired := true
		// minRet is the earliest response among unlinearized required
		// ops: anything invoked after it cannot linearize next.
		minRet := pendingTime
		for i, lo := range lops {
			if done[i/64]&(1<<(i%64)) != 0 {
				continue
			}
			if lo.required {
				allRequired = false
				if lo.ret < minRet {
					minRet = lo.ret
				}
			}
		}
		if allRequired {
			return true
		}
		memoKey := memoize(done, state)
		if seen[memoKey] {
			return false
		}
		for i, lo := range lops {
			if done[i/64]&(1<<(i%64)) != 0 {
				continue
			}
			if lo.op.Invoke > minRet {
				break // sorted by invocation: nothing later qualifies
			}
			next, match := step(state, lo.op)
			if !match {
				continue
			}
			done[i/64] |= 1 << (i % 64)
			if dfs(next) {
				return true
			}
			done[i/64] &^= 1 << (i % 64)
		}
		seen[memoKey] = true
		return false
	}
	rep.Linearizable = dfs(initial)
	rep.Visited = visited
	return rep
}

// memoize encodes (linearized set, model state) as a map key.
func memoize(done []uint64, s regState) string {
	var b strings.Builder
	for _, w := range done {
		fmt.Fprintf(&b, "%x.", w)
	}
	if s.exists {
		b.WriteByte('+')
		b.WriteString(s.val)
	} else {
		b.WriteByte('-')
	}
	return b.String()
}

// CheckLinearizability factors the history into per-key master-path
// sub-histories and checks each one. The master path is every
// effectful or indeterminate write plus every successful read served
// by a master replica; slave reads belong to the session-guarantee
// model (§3.3.2 explicitly allows them to be stale) and are checked
// separately.
//
// initialExists reports whether the keys existed (were seeded) before
// the history began. attributed declares that the history carries
// complete server-side attribution (the SE TxnObserver was attached),
// in which case an errored write without attribution provably never
// executed and is dropped instead of treated as indeterminate.
//
// Indeterminate operations (possible without attribution) may
// linearize anywhere after their invocation or not at all; they impose
// no real-time constraint on other operations. That is conservative —
// the checker can under-report, never falsely accuse.
func CheckLinearizability(h *History, initialExists, attributed bool) []LinReport {
	byKey := make(map[string][]*Op)
	for _, o := range h.Ops() {
		switch {
		case o.Kind == OpRead:
			if o.Ok && o.Role == store.Master {
				byKey[o.Key] = append(byKey[o.Key], o)
			}
		default:
			if o.effectful() || (!attributed && o.indeterminate()) {
				byKey[o.Key] = append(byKey[o.Key], o)
			}
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]LinReport, 0, len(keys))
	for _, k := range keys {
		out = append(out, CheckKeyLinearizable(k, byKey[k], regState{exists: initialExists}))
	}
	return out
}

// Violations counts non-linearizable keys in a report set.
func Violations(reps []LinReport) int {
	n := 0
	for _, r := range reps {
		if !r.Linearizable {
			n++
		}
	}
	return n
}
