package consistency

import (
	"sort"
	"strconv"

	"repro/internal/trace"
)

// TraceReport summarizes the per-hop attribution check over every
// trace the chaos recorder captured (the harness samples at rate 1).
type TraceReport struct {
	// Traces counts sampled traces still buffered at run end.
	Traces int
	// AckWaitsChecked counts successful quorum ack-wait spans the
	// invariant was evaluated on.
	AckWaitsChecked int
	// AckWaitViolations counts ack-wait spans shorter than the
	// slowest peer send they counted — per-hop attribution broken.
	AckWaitViolations int
}

// CheckTraceAttribution verifies the tracing subsystem's attribution
// invariant on every buffered trace: a successful quorum ack-wait
// span and its sibling per-peer send spans share the replication
// enqueue instant as their start, and the wait only returns after the
// watermark covers the commit — so the ack-wait duration must be at
// least the duration of the slowest *counted* send. The counted set
// is the "need" fastest sends (durations from a shared start order
// exactly like acknowledgement times); laggard peers acknowledging
// after quorum may legitimately exceed the wait and are not counted.
func CheckTraceAttribution(tr *trace.Recorder) TraceReport {
	var rep TraceReport
	for _, sum := range tr.Recent(1 << 20) {
		rep.Traces++
		spans := tr.Get(sum.Trace)
		sends := make(map[trace.ID][]float64) // parent → send durations (seconds)
		for _, sp := range spans {
			if sp.Name == "repl.send" {
				sends[sp.Parent] = append(sends[sp.Parent], sp.Duration.Seconds())
			}
		}
		for _, sp := range spans {
			if sp.Name != "repl.ackwait" || sp.Err != "" {
				continue
			}
			need := 0
			for _, a := range sp.Attrs {
				if a.Key == "need" {
					need, _ = strconv.Atoi(a.Value)
				}
			}
			sib := sends[sp.Parent]
			if need <= 0 || len(sib) < need {
				// Unknown requirement, or some counted sends were not
				// recorded (watch shed under backlog): not checkable.
				continue
			}
			sort.Float64s(sib)
			rep.AckWaitsChecked++
			if sp.Duration.Seconds() < sib[need-1] {
				rep.AckWaitViolations++
			}
		}
	}
	return rep
}
