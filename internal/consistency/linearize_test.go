package consistency

import (
	"fmt"
	"testing"

	"repro/internal/store"
)

// seqHistory builds histories with strictly increasing logical time.
type seqHistory struct {
	h     *History
	clock int64
	id    int
}

func newSeqHistory() *seqHistory { return &seqHistory{h: NewHistory()} }

func (s *seqHistory) add(o Op) *Op {
	s.id++
	s.clock++
	o.ID = s.id
	o.Invoke = s.clock
	s.clock++
	o.Return = s.clock
	cp := o
	s.h.add(&cp)
	return &cp
}

func masterRead(client int, key, val string, found bool) Op {
	return Op{Client: client, Kind: OpRead, Key: key, Ok: true, Found: found, Value: val}
}

func write(client int, key, val string) Op {
	return Op{Client: client, Kind: OpWrite, Key: key, Arg: val, Ok: true}
}

func cas(client int, key, expect, val string, cok bool) Op {
	return Op{Client: client, Kind: OpCAS, Key: key, Expect: expect, Arg: val, Ok: true, CompareOK: cok}
}

func TestLinearizableSequentialHistory(t *testing.T) {
	s := newSeqHistory()
	s.add(write(0, "k", "a"))
	s.add(masterRead(1, "k", "a", true))
	s.add(cas(0, "k", "a", "b", true))
	s.add(masterRead(1, "k", "b", true))
	s.add(Op{Client: 0, Kind: OpDelete, Key: "k", Ok: true})
	s.add(masterRead(1, "k", "", false))
	s.add(write(0, "k", "c"))
	s.add(masterRead(1, "k", "c", true))
	reps := CheckLinearizability(s.h, true, false)
	if len(reps) != 1 || !reps[0].Linearizable {
		t.Fatalf("sequential history flagged: %+v", reps)
	}
}

func TestLinearizabilityFlagsLostWrite(t *testing.T) {
	s := newSeqHistory()
	s.add(write(0, "k", "a"))
	s.add(masterRead(1, "k", "a", true))
	s.add(write(0, "k", "b"))            // acknowledged...
	s.add(masterRead(1, "k", "a", true)) // ...then gone: failover loss
	reps := CheckLinearizability(s.h, true, false)
	if Violations(reps) != 1 {
		t.Fatalf("lost acknowledged write not flagged: %+v", reps)
	}
}

func TestLinearizabilityConcurrentOverlap(t *testing.T) {
	// A read overlapping a write may return either the old or the new
	// value; both linearize.
	for _, val := range []string{"a", "b"} {
		h := NewHistory()
		h.add(&Op{ID: 1, Kind: OpWrite, Key: "k", Arg: "a", Ok: true, Invoke: 1, Return: 2})
		h.add(&Op{ID: 2, Kind: OpWrite, Key: "k", Arg: "b", Ok: true, Invoke: 3, Return: 6})
		h.add(&Op{ID: 3, Kind: OpRead, Key: "k", Ok: true, Found: true, Value: val, Invoke: 4, Return: 5})
		reps := CheckLinearizability(h, false, false)
		if Violations(reps) != 0 {
			t.Fatalf("overlapping read of %q flagged: %+v", val, reps)
		}
	}
	// But a read strictly after the write's response must see it.
	h := NewHistory()
	h.add(&Op{ID: 1, Kind: OpWrite, Key: "k", Arg: "a", Ok: true, Invoke: 1, Return: 2})
	h.add(&Op{ID: 2, Kind: OpWrite, Key: "k", Arg: "b", Ok: true, Invoke: 3, Return: 4})
	h.add(&Op{ID: 3, Kind: OpRead, Key: "k", Ok: true, Found: true, Value: "a", Invoke: 5, Return: 6})
	reps := CheckLinearizability(h, false, false)
	if Violations(reps) != 1 {
		t.Fatalf("stale post-response read not flagged: %+v", reps)
	}
}

func TestLinearizabilityIndeterminateOps(t *testing.T) {
	// An errored write without attribution may or may not have
	// happened: both subsequent read outcomes linearize.
	for _, val := range []string{"a", "b"} {
		s := newSeqHistory()
		s.add(write(0, "k", "a"))
		s.add(Op{Client: 0, Kind: OpWrite, Key: "k", Arg: "b", Ok: false, ErrClass: "unreachable"})
		s.add(masterRead(1, "k", val, true))
		reps := CheckLinearizability(s.h, true, false)
		if Violations(reps) != 0 {
			t.Fatalf("indeterminate write: read of %q flagged: %+v", val, reps)
		}
	}
	// With attribution the same errored write provably never executed:
	// reading its value must be flagged.
	s := newSeqHistory()
	s.add(write(0, "k", "a"))
	s.add(Op{Client: 0, Kind: OpWrite, Key: "k", Arg: "b", Ok: false, ErrClass: "unreachable"})
	s.add(masterRead(1, "k", "b", true))
	reps := CheckLinearizability(s.h, true, true)
	if Violations(reps) != 1 {
		t.Fatalf("attributed never-executed write's value read, not flagged: %+v", reps)
	}
	// And an errored write WITH attribution must be linearized: a later
	// read may (and here must) see it.
	s2 := newSeqHistory()
	s2.add(write(0, "k", "a"))
	s2.add(Op{Client: 0, Kind: OpWrite, Key: "k", Arg: "b", Ok: false,
		ErrClass: "master-unreachable", ServerSeen: true, ServerCSN: 2})
	s2.add(masterRead(1, "k", "b", true))
	reps = CheckLinearizability(s2.h, true, true)
	if Violations(reps) != 0 {
		t.Fatalf("attributed effectful write flagged: %+v", reps)
	}
}

// staleCASRegister is the sacrificial test double of the acceptance
// criteria: a register whose CAS path deliberately validates against a
// snapshot that is one operation stale — the classic read-validate-
// write race. The checker must flag histories it produces.
type staleCASRegister struct {
	cur  regState
	prev regState
}

func (r *staleCASRegister) apply(o *Op) {
	switch o.Kind {
	case OpWrite:
		r.prev = r.cur
		r.cur = regState{exists: true, val: o.Arg}
		o.Ok = true
	case OpCAS:
		// BUG: compares against the previous state, not the current.
		o.CompareOK = r.prev.exists && r.prev.val == o.Expect
		o.Ok = true
		r.prev = r.cur
		r.cur = regState{exists: true, val: o.Arg}
	case OpRead:
		o.Ok = true
		o.Found = r.cur.exists
		o.Value = r.cur.val
	case OpDelete:
		r.prev = r.cur
		r.cur = regState{}
		o.Ok = true
	}
}

func TestCheckerFlagsStaleCASDouble(t *testing.T) {
	reg := &staleCASRegister{}
	s := newSeqHistory()
	run := func(o Op) {
		cp := o
		cp.Ok = false
		reg.apply(&cp)
		s.add(cp)
	}
	run(write(0, "k", "a"))
	run(write(0, "k", "b"))
	// Pre-state is "b"; the buggy register validates against the stale
	// snapshot "a" and answers CompareOK=true.
	run(cas(0, "k", "a", "c", false))
	reps := CheckLinearizability(s.h, true, false)
	if Violations(reps) != 1 {
		t.Fatalf("stale-CAS double not flagged: %+v", reps)
	}

	// Control: the same schedule against an honest register passes.
	s2 := newSeqHistory()
	s2.add(write(0, "k", "a"))
	s2.add(write(0, "k", "b"))
	s2.add(cas(0, "k", "a", "c", false)) // honest answer: no match
	reps = CheckLinearizability(s2.h, true, false)
	if Violations(reps) != 0 {
		t.Fatalf("honest register flagged: %+v", reps)
	}
}

func TestSessionCheckerMeasuresStaleness(t *testing.T) {
	s := newSeqHistory()
	slaveRead := func(client int, key, val string) Op {
		o := masterRead(client, key, val, true)
		o.Role = store.Slave
		return o
	}
	s.add(write(0, "k", "a"))
	s.add(slaveRead(0, "k", "a")) // fresh
	s.add(write(0, "k", "b"))
	s.add(write(0, "k", "c"))
	s.add(slaveRead(0, "k", "a")) // 2 behind; RYW + monotonic? (first read saw "a" too)
	s.add(slaveRead(1, "k", "b")) // 1 behind, other client: stale only
	s.add(slaveRead(1, "k", "a")) // goes backwards: monotonic violation
	rep := CheckSessions(s.h)
	if rep.SlaveReads != 4 || rep.StaleReads != 3 {
		t.Fatalf("slave=%d stale=%d, want 4/3", rep.SlaveReads, rep.StaleReads)
	}
	if rep.RYWViolations != 1 {
		t.Fatalf("ryw=%d, want 1 (client 0 re-read its own overwritten value)", rep.RYWViolations)
	}
	if rep.MonotonicViolations != 1 {
		t.Fatalf("monotonic=%d, want 1", rep.MonotonicViolations)
	}
	if rep.MaxStaleness != 2 {
		t.Fatalf("max staleness=%d, want 2", rep.MaxStaleness)
	}
}

func TestLinearizeSearchBounded(t *testing.T) {
	// A pile of overlapping identical writes explodes combinatorially
	// without memoization; with it the search stays small.
	h := NewHistory()
	const n = 18
	for i := 0; i < n; i++ {
		h.add(&Op{ID: i, Kind: OpWrite, Key: "k", Arg: fmt.Sprint(i), Ok: true,
			Invoke: 1, Return: 100})
	}
	h.add(&Op{ID: n, Kind: OpRead, Key: "k", Ok: true, Found: true, Value: "7",
		Invoke: 101, Return: 102})
	reps := CheckLinearizability(h, false, false)
	if Violations(reps) != 0 {
		t.Fatalf("overlapping writes flagged: %+v", reps)
	}
	if reps[0].Visited > linMaxStates/10 {
		t.Fatalf("search visited %d states; memoization broken?", reps[0].Visited)
	}
}
