// The fault-schedule fuzzer. A Schedule is a deterministic function of
// its seed: a list of fault events pinned to operation indexes of the
// client stream, drawn from a legality state machine so every
// generated schedule is executable (heal only while partitioned,
// recover only while crashed, failover only against an isolated
// master, one episode of each fault class at a time).
//
// The grammar (documented for EXPERIMENTS.md):
//
//	schedule   := event*
//	event      := "ev at=" INT " kind=" kind args
//	kind       := "partition" | "heal" | "failover" | "crash"
//	            | "recover" | "repair" | "migrate" | "checkpoint"
//	args(partition) := " site=" SITE     // isolate one site (glitch
//	                                     // start: §2.5/§4.1 backbone cut)
//	args(heal)      := ""                // glitch end
//	args(failover)  := " site=" SITE     // promote slaves of every
//	                                     // partition mastered on the
//	                                     // isolated site, demote the old
//	                                     // masters (OSS action, §3.1)
//	args(crash)     := " el=" ELEMENT    // storage element crash: RAM
//	                                     // lost, WAL survives (§3.1)
//	args(recover)   := " el=" ELEMENT    // WAL recovery + OSS restore
//	args(repair)    := ""                // anti-entropy round (E16)
//	args(migrate)   := " part=" PART " pick=" INT
//	                                     // live-migrate the partition's
//	                                     // master; the target is the
//	                                     // pick-th eligible element (an
//	                                     // element hosting no replica) at
//	                                     // execution time, so the choice
//	                                     // is deterministic even though
//	                                     // hosting changes as earlier
//	                                     // migrations land. A migrate
//	                                     // fired across an open backbone
//	                                     // cut exercises the abort path.
//	args(checkpoint) := " el=" ELEMENT   // incremental WAL checkpoint of
//	                                     // every replica the element
//	                                     // hosts (§3.1 periodic save); a
//	                                     // later crash of that element
//	                                     // recovers image + suffix
//	                                     // instead of whole-log replay
//
// "at=N" fires before client operation N. Short partition→heal pairs
// are the paper's §4.1 network glitches; the soak profile additionally
// stretches episodes across many concurrent operations.
package consistency

import (
	"fmt"
	"math/rand"
	"strings"
)

// EventKind enumerates fault-schedule events.
type EventKind int

// Fault-schedule event kinds.
const (
	EvPartition EventKind = iota
	EvHeal
	EvFailover
	EvCrash
	EvRecover
	EvRepair
	EvMigrate
	EvCheckpoint
)

// String returns the event kind token used in the schedule grammar.
func (k EventKind) String() string {
	switch k {
	case EvPartition:
		return "partition"
	case EvHeal:
		return "heal"
	case EvFailover:
		return "failover"
	case EvCrash:
		return "crash"
	case EvRecover:
		return "recover"
	case EvRepair:
		return "repair"
	case EvMigrate:
		return "migrate"
	case EvCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one scheduled fault, fired before client operation AtOp.
type Event struct {
	AtOp    int
	Kind    EventKind
	Site    string // partition / failover
	Element string // crash / recover
	Part    string // migrate: partition to move
	Pick    int    // migrate: index into the eligible targets at fire time
}

// format renders the event as one stable schedule line.
func (e Event) format(b *strings.Builder) {
	fmt.Fprintf(b, "ev at=%d kind=%s", e.AtOp, e.Kind)
	if e.Site != "" {
		fmt.Fprintf(b, " site=%s", e.Site)
	}
	if e.Element != "" {
		fmt.Fprintf(b, " el=%s", e.Element)
	}
	if e.Part != "" {
		fmt.Fprintf(b, " part=%s pick=%d", e.Part, e.Pick)
	}
	b.WriteByte('\n')
}

// Schedule is a generated fault schedule.
type Schedule struct {
	Seed   int64
	Events []Event
}

// String renders the schedule in the grammar above, byte-stable.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d\n", s.Seed)
	for _, e := range s.Events {
		e.format(&b)
	}
	return b.String()
}

// maxEpisode bounds how many fault slots a partition or crash episode
// may stay open before the generator forces its end.
const maxEpisode = 3

// GenerateSchedule draws a fault schedule for a run of totalOps client
// operations over the given sites and storage elements. faultMin and
// faultMax bound the operation gap between consecutive fault slots.
// crashes may be disabled (no WAL configured); migrations are drawn
// over parts when enabled, and may fire inside partition or crash
// episodes — migrating across a backbone cut is the abort path under
// test, not an illegal schedule. checkpoints (also WAL-gated) draws
// incremental checkpoint events against up elements, so crash-restart
// paths cross checkpoint boundaries; it is a separate knob so
// schedules generated before the checkpoint event existed stay
// byte-identical for their seeds.
func GenerateSchedule(seed int64, totalOps int, sites, elements, parts []string, faultMin, faultMax int, crashes, migrations, checkpoints bool) *Schedule {
	if faultMin < 1 {
		faultMin = 1 // a zero gap would pin every event to op 0 forever
	}
	if faultMax < faultMin {
		faultMax = faultMin
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed}

	partitioned := "" // isolated site, "" when whole
	failedOver := false
	crashed := "" // crashed element, "" when all up
	episode := 0  // slots the current episode has been open

	gap := func() int { return faultMin + rng.Intn(faultMax-faultMin+1) }
	at := gap()
	for at < totalOps {
		type choice struct {
			kind   EventKind
			weight int
		}
		var choices []choice
		if partitioned == "" && crashed == "" {
			choices = append(choices, choice{EvPartition, 4})
			if crashes {
				choices = append(choices, choice{EvCrash, 3})
			}
			choices = append(choices, choice{EvRepair, 2})
		}
		if migrations && len(parts) > 0 {
			// Migrations are legal in any state: across an open cut
			// they abort (the path under test), in a whole network
			// they cut over live.
			choices = append(choices, choice{EvMigrate, 2})
		}
		if checkpoints {
			// Checkpoints are local to one element and legal whenever
			// it is up; the generator steers away from the crashed one.
			choices = append(choices, choice{EvCheckpoint, 2})
		}
		if partitioned != "" {
			if episode >= maxEpisode {
				choices = []choice{{EvHeal, 1}}
			} else {
				choices = append(choices, choice{EvHeal, 3})
				if !failedOver {
					choices = append(choices, choice{EvFailover, 3})
				}
			}
		}
		if crashed != "" {
			if episode >= maxEpisode {
				choices = []choice{{EvRecover, 1}}
			} else {
				choices = append(choices, choice{EvRecover, 3}, choice{EvRepair, 1})
			}
		}

		total := 0
		for _, c := range choices {
			total += c.weight
		}
		pick := rng.Intn(total)
		var kind EventKind
		for _, c := range choices {
			if pick < c.weight {
				kind = c.kind
				break
			}
			pick -= c.weight
		}

		ev := Event{AtOp: at, Kind: kind}
		switch kind {
		case EvPartition:
			ev.Site = sites[rng.Intn(len(sites))]
			partitioned = ev.Site
			failedOver = false
			episode = 1
		case EvHeal:
			partitioned = ""
			episode = 0
		case EvFailover:
			ev.Site = partitioned
			failedOver = true
			episode++
		case EvCrash:
			ev.Element = elements[rng.Intn(len(elements))]
			crashed = ev.Element
			episode = 1
		case EvRecover:
			ev.Element = crashed
			crashed = ""
			episode = 0
		case EvRepair:
			episode++
		case EvMigrate:
			ev.Part = parts[rng.Intn(len(parts))]
			ev.Pick = rng.Intn(len(elements))
			if partitioned != "" || crashed != "" {
				episode++
			}
		case EvCheckpoint:
			i := rng.Intn(len(elements))
			if elements[i] == crashed {
				i = (i + 1) % len(elements)
			}
			ev.Element = elements[i]
			if partitioned != "" || crashed != "" {
				episode++
			}
		}
		s.Events = append(s.Events, ev)
		at += gap()
	}
	// Close any open episode inside the op stream so the measured part
	// of the run ends whole (the harness force-heals again at the end).
	if partitioned != "" {
		s.Events = append(s.Events, Event{AtOp: totalOps, Kind: EvHeal})
	}
	if crashed != "" {
		s.Events = append(s.Events, Event{AtOp: totalOps, Kind: EvRecover, Element: crashed})
	}
	return s
}
