// The chaos harness: builds a three-site UDR on a deterministic
// simnet, seeds subscribers, drives a seeded stream of client
// operations through the FE→PoA→SE path while applying the fault
// schedule, and runs the checkers over the recorded history.
//
// Determinism. The deterministic profile issues operations one at a
// time from a single goroutine; fault events fire at operation-index
// boundaries; the network runs with zero jitter and zero loss; the WAL
// runs in sync-every-commit mode so crash recovery is an exact replay;
// and before every read and every fault event the driver settles
// replication to every *reachable* peer, so each response depends only
// on the operation prefix and the schedule — never on goroutine or
// timer interleavings. Same seed ⇒ byte-identical schedule and
// byte-identical history, which is what makes a failing run its own
// reproducer.
package consistency

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/antientropy"
	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/trace"
	"repro/internal/wal"
)

// ChaosAttr is the subscriber attribute the harness reads and writes.
const ChaosAttr = "chaosVal"

// Config parameterizes a chaos run. The zero value is not usable; use
// DefaultConfig (CI-sized) as the base.
type Config struct {
	// Seed drives the operation stream and the fault schedule.
	Seed int64
	// Ops is the number of client operations to drive.
	Ops int
	// Subscribers is the seeded population (the key space).
	Subscribers int
	// Clients is the number of virtual client sessions, spread
	// round-robin over the sites. Each key has a single writer client
	// (key index mod Clients); reads come from any client.
	Clients int
	// Durability is the replication commit durability under test.
	Durability replication.Durability
	// QuorumPolicy configures the Quorum durability level (majority,
	// fixed count or site-aware); ignored for other levels.
	QuorumPolicy replication.QuorumPolicy
	// WALDir, when non-empty, enables disk persistence and unlocks
	// crash-restart events (real WAL recovery through internal/wal).
	WALDir string
	// Checkpoints adds incremental WAL checkpoint events to the fault
	// schedule (requires WALDir), so crash-restart paths recover from
	// an image + log suffix instead of a whole-log replay. A separate
	// knob: enabling it changes what a seed generates, and existing
	// seeded schedules must stay byte-identical.
	Checkpoints bool
	// FaultMin/FaultMax bound the operation gap between fault events.
	FaultMin, FaultMax int
	// SettleTimeout bounds each replication settle wait.
	SettleTimeout time.Duration
	// Migrations adds live partition migrations to the fault schedule
	// and doubles the storage elements per site so eligible targets
	// (elements hosting no replica of a partition) exist. A migrate
	// fired across an open backbone cut exercises the abort path; a
	// successful one moves the master mid-history, and the checkers
	// hold the same linearizability/convergence bar across it.
	Migrations bool
	// FECache routes FE reads through the PoA subscriber cache
	// (capacity sized so eviction never drops a floor mid-run) and
	// attaches the in-process fast path to every FE session. The
	// session checkers then hold cached reads to the same
	// read-your-writes/monotonic bar as slave reads.
	FECache bool
}

// DefaultConfig returns the CI-sized deterministic profile.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Ops:           260,
		Subscribers:   24,
		Clients:       6,
		Durability:    replication.Async,
		FaultMin:      8,
		FaultMax:      20,
		SettleTimeout: 10 * time.Second,
	}
}

// Result is the outcome of a chaos run.
type Result struct {
	Cfg      Config
	Schedule *Schedule
	History  *History
	// Events is the applied schedule with deterministic outcomes
	// (promoted masters, replayed record counts, repair traffic).
	Events []string

	Lin           []LinReport
	LinViolations int
	Session       SessionReport
	// Converged reports whether every replica of every partition
	// agreed row-for-row after the final heal, repair and settle.
	Converged bool
	// Diverged counts, per partition, rows still disagreeing when
	// Converged is false.
	Diverged map[string]int
	// Trace is the per-hop attribution check over the run's traces
	// (the harness records every request at sampling rate 1).
	// Deliberately not part of the reproducer: span counts depend on
	// wall-clock ack arrival, not on the deterministic schedule.
	Trace TraceReport
}

// Reproducer renders the seed + schedule + history reproducer bundle.
func (r *Result) Reproducer() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos reproducer\nseed=%d ops=%d subs=%d clients=%d durability=%s quorum=%s wal=%t fecache=%t\n",
		r.Cfg.Seed, r.Cfg.Ops, r.Cfg.Subscribers, r.Cfg.Clients,
		r.Cfg.Durability, r.Cfg.QuorumPolicy, r.Cfg.WALDir != "", r.Cfg.FECache)
	if r.Cfg.Checkpoints {
		b.WriteString("checkpoints=true\n")
	}
	b.WriteString(r.Schedule.String())
	for _, e := range r.Events {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	b.WriteString(r.History.String())
	return b.String()
}

// WriteReproducer dumps the reproducer bundle under dir (created if
// missing) and returns the file path.
func (r *Result) WriteReproducer(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-seed%d.repro", r.Cfg.Seed))
	return path, os.WriteFile(path, []byte(r.Reproducer()), 0o644)
}

// genOp is one pre-generated client operation.
type genOp struct {
	client int
	kind   OpKind
	key    int // subscriber index
	policy core.Policy
	arg    string
	expect string
}

// generateOps draws the operation stream. Writes (and CAS and deletes)
// of a key always come from its owner client so per-key writes are
// totally ordered even in the concurrent profile.
func generateOps(cfg Config, rng *rand.Rand) []genOp {
	lastVal := make([]string, cfg.Subscribers)
	ops := make([]genOp, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		key := rng.Intn(cfg.Subscribers)
		op := genOp{key: key}
		switch p := rng.Intn(100); {
		case p < 45:
			op.kind = OpRead
			op.client = rng.Intn(cfg.Clients)
			if rng.Intn(100) < 70 {
				op.policy = core.PolicyFE
			} else {
				op.policy = core.PolicyPS
			}
		case p < 80:
			op.kind = OpWrite
		case p < 95:
			op.kind = OpCAS
		default:
			op.kind = OpDelete
		}
		if op.kind != OpRead {
			op.client = key % cfg.Clients
			op.policy = core.PolicyPS
		}
		if op.kind == OpWrite || op.kind == OpCAS {
			op.arg = fmt.Sprintf("v%04d-c%d", i, op.client)
		}
		if op.kind == OpCAS {
			if rng.Intn(100) < 70 {
				op.expect = lastVal[key]
			} else {
				op.expect = "bogus"
			}
		}
		if op.kind == OpWrite || op.kind == OpCAS {
			lastVal[key] = op.arg
		}
		ops = append(ops, op)
	}
	return ops
}

// chaosNetConfig is the deterministic network: zero jitter, zero
// loss, short timeouts (wall time only — outcomes never depend on it).
func chaosNetConfig(seed int64) simnet.Config {
	return simnet.Config{
		Local:    simnet.Link{Latency: 0, Timeout: 300 * time.Microsecond},
		Backbone: simnet.Link{Latency: 50 * time.Microsecond, Timeout: time.Millisecond},
		Seed:     seed,
	}
}

// harness bundles the run state.
type harness struct {
	cfg     Config
	net     *simnet.Network
	u       *core.UDR
	hist    *History
	keys    []string // subscriber IDs by key index
	parts   []string // partition per key index
	fe, ps  []*core.Session
	events  []string
	crashed map[string]bool
	// stuck marks replicas whose replication stream is CSN-gap-stuck
	// until the next repair round: the demoted old masters of a
	// failover. settleReachable skips them ("partition/element" keys);
	// repair re-attaches them and clears the set.
	stuck map[string]bool
	// tracer records every request (rate 1) so the run can verify the
	// tracing subsystem's attribution invariant. Sampling is a pure
	// hash of the trace ID — no RNG draws — so determinism holds.
	tracer *trace.Recorder
}

// Run executes one deterministic chaos run and checks the history.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.FaultMax < cfg.FaultMin {
		cfg.FaultMax = cfg.FaultMin
	}
	h := &harness{cfg: cfg, hist: NewHistory(),
		crashed: make(map[string]bool), stuck: make(map[string]bool)}
	h.net = simnet.New(chaosNetConfig(cfg.Seed))
	h.tracer = trace.New(trace.Config{SampleRate: 1, Capacity: 1 << 16})

	ucfg := core.DefaultConfig()
	ucfg.Trace = h.tracer
	ucfg.Durability = cfg.Durability
	ucfg.QuorumPolicy = cfg.QuorumPolicy
	ucfg.AntiEntropy = true
	ucfg.RepairInterval = 0           // rounds run only when the schedule says so
	ucfg.HealPollInterval = time.Hour // background heal watch effectively off
	if cfg.Migrations {
		for i := range ucfg.Sites {
			ucfg.Sites[i].SEs = 2
		}
		// Keep the deterministic profile fast: events fire on a settled
		// cluster, so catch-up is instant and the cutover freeze only
		// ever waits on unreachable peers — bound that wait tightly.
		ucfg.MigrateFreezeTimeout = 20 * time.Millisecond
		ucfg.MigrateCatchUpTimeout = 500 * time.Millisecond
	}
	if cfg.WALDir != "" {
		ucfg.WALDir = cfg.WALDir
		ucfg.WALMode = wal.SyncEveryCommit // crash recovery is an exact replay
	}
	if cfg.FECache {
		ucfg.FECache = true
		// Ample capacity: eviction is the only path that loses a key's
		// staleness floor, so the deterministic profile sizes it out
		// (the whole population fits in every shard).
		ucfg.FECacheCapacity = cfg.Subscribers * 32
		ucfg.FECacheSlaveLB = true
	}
	u, err := core.New(h.net, ucfg)
	if err != nil {
		return nil, err
	}
	h.u = u
	defer u.Stop()

	// Faster fault probing: the deterministic outcomes do not depend
	// on these wall-clock knobs, only the run time does.
	for _, elID := range u.Elements() {
		el := u.Element(elID)
		el.Node().RetryInterval = 500 * time.Microsecond
		el.Node().CallTimeout = 20 * time.Millisecond
		el.SetTxnObserver(func(_ simnet.Addr, req se.TxnReq, resp se.TxnResp, _ error) {
			if req.Tag != "" && resp.CSN > 0 {
				h.hist.attribute(req.Tag, resp.CSN)
			}
		})
	}

	if err := h.seed(ctx); err != nil {
		return nil, err
	}
	sched := GenerateSchedule(cfg.Seed, cfg.Ops, u.Sites(), u.Elements(), u.Partitions(),
		cfg.FaultMin, cfg.FaultMax, cfg.WALDir != "", cfg.Migrations,
		cfg.WALDir != "" && cfg.Checkpoints)
	opsRng := rand.New(rand.NewSource(cfg.Seed + 7919))
	stream := generateOps(cfg, opsRng)

	// Drive: fault events fire before the operation they are pinned to.
	evIdx := 0
	for i, op := range stream {
		for evIdx < len(sched.Events) && sched.Events[evIdx].AtOp <= i {
			if err := h.applyEvent(ctx, sched.Events[evIdx]); err != nil {
				return nil, err
			}
			evIdx++
		}
		if err := h.execute(ctx, i, op); err != nil {
			return nil, err
		}
	}
	for ; evIdx < len(sched.Events); evIdx++ {
		if err := h.applyEvent(ctx, sched.Events[evIdx]); err != nil {
			return nil, err
		}
	}

	// Final restore: heal, recover, repair to convergence, settle.
	h.net.Heal()
	for elID := range h.crashed {
		if err := h.recoverElement(elID); err != nil {
			return nil, err
		}
	}
	converged, diverged, err := h.restore(ctx)
	if err != nil {
		return nil, err
	}

	h.hist.resolve()
	res := &Result{
		Cfg:       cfg,
		Schedule:  sched,
		History:   h.hist,
		Events:    h.events,
		Session:   CheckSessions(h.hist),
		Converged: converged,
		Diverged:  diverged,
		Trace:     CheckTraceAttribution(h.tracer),
	}
	res.Lin = CheckLinearizability(h.hist, true, true)
	res.LinViolations = Violations(res.Lin)
	return res, nil
}

// seed provisions the population and resolves each key's placement so
// operations can address partitions directly (no locator coupling).
func (h *harness) seed(ctx context.Context) error {
	gen := subscriber.NewGenerator(h.u.Sites()...)
	stage := h.u.Stage(h.u.Sites()[0])
	for i := 0; i < h.cfg.Subscribers; i++ {
		p := gen.Profile(i)
		if err := h.u.SeedDirect(p); err != nil {
			return err
		}
		pl, err := stage.Lookup(ctx, subscriber.Identity{Type: subscriber.UID, Value: p.ID})
		if err != nil {
			return fmt.Errorf("consistency: placement of %s: %w", p.ID, err)
		}
		h.keys = append(h.keys, p.ID)
		h.parts = append(h.parts, pl.Partition)
	}
	sites := h.u.Sites()
	for c := 0; c < h.cfg.Clients; c++ {
		site := sites[c%len(sites)]
		from := simnet.MakeAddr(site, fmt.Sprintf("chaos-%d", c))
		fe := core.NewSession(h.net, from, site, core.PolicyFE)
		if h.cfg.FECache {
			fe.AttachCache(h.u.PoA(site).Cache())
		}
		fe.AttachTracer(h.tracer)
		ps := core.NewSession(h.net, from, site, core.PolicyPS)
		ps.AttachTracer(h.tracer)
		h.fe = append(h.fe, fe)
		h.ps = append(h.ps, ps)
	}
	if err := h.u.WaitReplication(ctx); err != nil {
		return err
	}
	return nil
}

// execute runs one client operation and records it.
func (h *harness) execute(ctx context.Context, id int, g genOp) error {
	if g.kind == OpRead {
		// Reads observe replica state: settle in-flight replication to
		// every reachable peer first, so what a replica serves depends
		// on the schedule, not on sender timing.
		if err := h.settleReachable(ctx); err != nil {
			return err
		}
	}
	o := &Op{
		ID:     id,
		Client: g.client,
		Site:   h.fe[g.client].PoASite(),
		Policy: g.policy,
		Kind:   g.kind,
		Key:    h.keys[g.key],
		Arg:    g.arg,
		Expect: g.expect,
	}
	req := core.ExecReq{
		SubscriberID: o.Key,
		Partition:    h.parts[g.key],
		Tag:          opTag(id),
	}
	switch g.kind {
	case OpRead:
		req.Ops = []se.TxnOp{{Kind: se.TxnGet, Key: o.Key}}
	case OpWrite:
		req.Ops = []se.TxnOp{{Kind: se.TxnModify, Key: o.Key, Mods: []store.Mod{
			{Kind: store.ModReplace, Attr: ChaosAttr, Vals: []string{g.arg}}}}}
	case OpCAS:
		req.Ops = []se.TxnOp{
			{Kind: se.TxnCompare, Key: o.Key, Attr: ChaosAttr, Value: g.expect},
			{Kind: se.TxnModify, Key: o.Key, Mods: []store.Mod{
				{Kind: store.ModReplace, Attr: ChaosAttr, Vals: []string{g.arg}}}},
		}
	case OpDelete:
		req.Ops = []se.TxnOp{{Kind: se.TxnDelete, Key: o.Key}}
	}
	sess := h.ps[g.client]
	if g.policy == core.PolicyFE {
		sess = h.fe[g.client]
	}

	o.Invoke = h.hist.tick()
	resp, err := sess.Exec(ctx, req)
	o.Return = h.hist.tick()
	if err != nil {
		o.ErrClass = errClass(err)
	} else {
		o.Ok = true
		o.Role = resp.Role
		o.CSN = resp.CSN
		r0 := resp.Results[0]
		switch g.kind {
		case OpRead:
			o.Found = r0.Found
			o.Value = r0.Entry.First(ChaosAttr)
			o.CSN = r0.Meta.CSN
		case OpCAS:
			o.Found = r0.Found
			o.CompareOK = r0.CompareOK
		}
	}
	h.hist.add(o)
	return nil
}

// applyEvent fires one fault-schedule event and records its outcome.
func (h *harness) applyEvent(ctx context.Context, ev Event) error {
	switch ev.Kind {
	case EvPartition:
		if err := h.settleReachable(ctx); err != nil {
			return err
		}
		h.net.Partition([]string{ev.Site})
		h.eventf("ev at=%d kind=partition site=%s", ev.AtOp, ev.Site)
	case EvHeal:
		h.net.Heal()
		// Drain every drainable stream first so the repair walk sees a
		// deterministic state (anti-entropy racing in-flight senders
		// would ship a timing-dependent row count); the gap-stuck
		// demoted masters are excluded, repaired, then settled.
		if err := h.settleReachable(ctx); err != nil {
			return err
		}
		rounds, rows := h.repairRounds(ctx, 8)
		for k := range h.stuck {
			delete(h.stuck, k)
		}
		if err := h.settleReachable(ctx); err != nil {
			return err
		}
		h.eventf("ev at=%d kind=heal repair-rounds=%d rows=%d", ev.AtOp, rounds, rows)
	case EvFailover:
		if err := h.settleReachable(ctx); err != nil {
			return err
		}
		promoted := 0
		for _, partID := range h.u.Partitions() {
			part, ok := h.u.Partition(partID)
			if !ok || part.Master().Site != ev.Site {
				continue
			}
			oldMaster := part.Master().Element
			if h.crashed[oldMaster] {
				continue
			}
			ref, err := h.u.Failover(partID)
			if err != nil {
				h.eventf("ev at=%d kind=failover part=%s skipped", ev.AtOp, partID)
				continue
			}
			// OSS demotes the isolated old master so it stops
			// shipping its divergent tail (the E16 scenario). Its
			// stream stays CSN-gap-stuck until repair re-attaches it.
			h.u.Element(oldMaster).Replica(partID).Repl.Demote()
			h.u.Element(ref.Element).Replica(partID).Repl.SetQuorumPolicy(h.cfg.QuorumPolicy)
			h.u.Element(ref.Element).Replica(partID).Repl.SetDurability(h.cfg.Durability)
			h.stuck[partID+"/"+oldMaster] = true
			promoted++
			h.eventf("ev at=%d kind=failover part=%s new-master=%s", ev.AtOp, partID, ref.Element)
		}
		if promoted == 0 {
			h.eventf("ev at=%d kind=failover site=%s noop", ev.AtOp, ev.Site)
		}
	case EvCrash:
		if err := h.settleReachable(ctx); err != nil {
			return err
		}
		h.u.Element(ev.Element).Crash()
		h.crashed[ev.Element] = true
		// OSS failover: partitions mastered on the crashed element get
		// a healthy slave promoted immediately (§3.1). A slave's
		// applied stream is RAM-only — only master commits hit its WAL
		// — so letting a promoted-then-crashed element resume as master
		// would resurrect a store missing its whole slave epoch. The
		// element rejoins as a slave and is reseeded at recovery.
		for _, partID := range h.u.Partitions() {
			part, ok := h.u.Partition(partID)
			if !ok || part.Master().Element != ev.Element {
				continue
			}
			ref, err := h.u.Failover(partID)
			if err != nil {
				h.eventf("ev at=%d kind=crash el=%s part=%s failover-skipped", ev.AtOp, ev.Element, partID)
				continue
			}
			h.u.Element(ref.Element).Replica(partID).Repl.SetQuorumPolicy(h.cfg.QuorumPolicy)
			h.u.Element(ref.Element).Replica(partID).Repl.SetDurability(h.cfg.Durability)
			h.eventf("ev at=%d kind=crash el=%s part=%s new-master=%s", ev.AtOp, ev.Element, partID, ref.Element)
		}
		h.eventf("ev at=%d kind=crash el=%s", ev.AtOp, ev.Element)
	case EvRecover:
		if err := h.recoverElement(ev.Element); err != nil {
			return err
		}
		if err := h.settleReachable(ctx); err != nil {
			return err
		}
		h.eventf("ev at=%d kind=recover el=%s", ev.AtOp, ev.Element)
	case EvRepair:
		// Quiesce in-flight senders first: repair racing the stream
		// would ship a timing-dependent row count.
		if err := h.settleReachable(ctx); err != nil {
			return err
		}
		stats, _ := h.u.RepairAll(ctx) // unreachable peers: deterministic skips
		rows := 0
		for _, s := range stats {
			rows += s.RowsTransferred()
		}
		h.eventf("ev at=%d kind=repair rounds=%d rows=%d", ev.AtOp, len(stats), rows)
	case EvCheckpoint:
		// Deliberately no settle: the checkpoint streams its image
		// while client commits keep flowing — that concurrency is the
		// thing under test. The replica count is a function of the
		// schedule (hosting only changes at migrate events), so the
		// line stays deterministic.
		if h.crashed[ev.Element] {
			h.eventf("ev at=%d kind=checkpoint el=%s noop (crashed)", ev.AtOp, ev.Element)
			return nil
		}
		n := h.u.Element(ev.Element).CheckpointAll()
		h.eventf("ev at=%d kind=checkpoint el=%s replicas=%d", ev.AtOp, ev.Element, n)
	case EvMigrate:
		// Quiesce first so the bulk-copy row count and catch-up are
		// functions of the schedule, not sender timing.
		if err := h.settleReachable(ctx); err != nil {
			return err
		}
		target, ok := h.migrateTarget(ev)
		if !ok {
			h.eventf("ev at=%d kind=migrate part=%s noop (no eligible target)", ev.AtOp, ev.Part)
			return nil
		}
		rep, err := h.u.MigratePartition(ctx, ev.Part, target, false)
		switch {
		case err == nil:
			// Peers the cutover could not drain (partitioned away) are
			// gap-stuck on the new master's stream until repair
			// re-attaches them — the same bookkeeping as a failover's
			// demoted old master.
			if part, ok := h.u.Partition(ev.Part); ok {
				for _, ref := range part.Replicas[1:] {
					for _, left := range rep.LeftBehind {
						if ref.Addr == left {
							h.stuck[ev.Part+"/"+ref.Element] = true
						}
					}
				}
			}
			h.eventf("ev at=%d kind=migrate part=%s to=%s rows=%d left-behind=%d",
				ev.AtOp, ev.Part, target, rep.RowsCopied, len(rep.LeftBehind))
		case rep != nil:
			// Aborted: the source must still be authoritative. Log the
			// phase, not the error text (its details may carry timing).
			h.eventf("ev at=%d kind=migrate part=%s to=%s aborted phase=%s", ev.AtOp, ev.Part, target, rep.Phase)
		default:
			h.eventf("ev at=%d kind=migrate part=%s to=%s rejected", ev.AtOp, ev.Part, target)
		}
	}
	return nil
}

// migrateTarget resolves a migrate event's pick to a concrete element:
// the pick-th entry of the sorted eligible set (elements hosting no
// replica of the partition) at fire time. Hosting evolves as earlier
// migrations land, but it evolves deterministically, so the choice is
// a pure function of schedule prefix + seed.
func (h *harness) migrateTarget(ev Event) (string, bool) {
	var eligible []string
	for _, elID := range h.u.Elements() {
		if el := h.u.Element(elID); el != nil && el.Replica(ev.Part) == nil {
			eligible = append(eligible, elID)
		}
	}
	if len(eligible) == 0 {
		return "", false
	}
	return eligible[ev.Pick%len(eligible)], true
}

// recoverElement runs WAL recovery and the OSS restore: master
// replicas get their peers and durability re-wired (WAL replay already
// restored their data — sync-every-commit mode loses nothing); slave
// replicas are bulk-reseeded from their current master, which also
// re-attaches the replication stream at the right watermark.
func (h *harness) recoverElement(elID string) error {
	el := h.u.Element(elID)
	if _, err := el.Recover(); err != nil {
		return fmt.Errorf("consistency: recover %s: %w", elID, err)
	}
	delete(h.crashed, elID)
	for _, partID := range el.Partitions() {
		part, ok := h.u.Partition(partID)
		if !ok {
			continue
		}
		if part.Master().Element == elID {
			var peers []simnet.Addr
			for _, ref := range part.Replicas[1:] {
				if pe := h.u.Element(ref.Element); pe != nil && !pe.Down() {
					peers = append(peers, ref.Addr)
				}
			}
			rep := el.Replica(partID).Repl
			rep.SetPeers(peers...)
			rep.SetQuorumPolicy(h.cfg.QuorumPolicy)
			rep.SetDurability(h.cfg.Durability)
			continue
		}
		if mEl := h.u.Element(part.Master().Element); mEl == nil || mEl.Down() {
			continue
		}
		if err := h.u.ReseedSlave(partID, elID); err != nil {
			return fmt.Errorf("consistency: reseed %s/%s: %w", partID, elID, err)
		}
	}
	return nil
}

// repairRounds runs anti-entropy rounds until every peer reports in
// sync or maxRounds is hit; returns rounds run and rows transferred.
func (h *harness) repairRounds(ctx context.Context, maxRounds int) (rounds, rows int) {
	for r := 0; r < maxRounds; r++ {
		stats, err := h.u.RepairAll(ctx)
		rounds++
		dirty := err != nil
		for _, s := range stats {
			rows += s.RowsTransferred()
			if !s.InSync {
				dirty = true
			}
		}
		if !dirty {
			return rounds, rows
		}
	}
	return rounds, rows
}

// settleReachable waits until every replica reachable from its
// current master has applied the master's full commit stream (the
// peer store's applied watermark reaches the master's CSN — sender
// acknowledgements lag re-wired streams and would never settle).
// Unreachable or crashed peers are excluded: their staleness is the
// schedule's doing, not timing noise.
func (h *harness) settleReachable(ctx context.Context) error {
	deadline := time.Now().Add(h.cfg.SettleTimeout)
	for {
		stable := true
		var lag []string
		for _, partID := range h.u.Partitions() {
			part, ok := h.u.Partition(partID)
			if !ok {
				continue
			}
			master := part.Master()
			el := h.u.Element(master.Element)
			if el == nil || el.Down() {
				continue
			}
			target := el.Replica(partID).Store.CSN()
			for _, ref := range part.Replicas[1:] {
				if h.net.Partitioned(master.Site, ref.Site) || h.stuck[partID+"/"+ref.Element] {
					continue
				}
				peerEl := h.u.Element(ref.Element)
				if peerEl == nil || peerEl.Down() {
					continue
				}
				if applied := peerEl.Replica(partID).Store.AppliedCSN(); applied < target {
					stable = false
					lag = append(lag, fmt.Sprintf("%s@%s %d<%d", partID, ref.Element, applied, target))
				}
			}
		}
		if stable {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("consistency: settle timeout: %s", strings.Join(lag, ", "))
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// restore drives the final reconvergence: anti-entropy rounds first
// (the cheap path), then a bulk reseed of any replica still divergent
// (the OSS full restore), then a final settle and divergence count.
func (h *harness) restore(ctx context.Context) (bool, map[string]int, error) {
	h.repairRounds(ctx, 10)
	if err := h.settleReachable(ctx); err != nil {
		return false, nil, err
	}
	if div := h.divergence(); len(div) > 0 {
		for partID := range div {
			part, _ := h.u.Partition(partID)
			for _, ref := range part.Replicas[1:] {
				if err := h.u.ReseedSlave(partID, ref.Element); err != nil {
					return false, nil, err
				}
			}
		}
		h.repairRounds(ctx, 4)
		if err := h.settleReachable(ctx); err != nil {
			return false, nil, err
		}
	}
	div := h.divergence()
	return len(div) == 0, div, nil
}

// divergence counts, per partition, rows whose digest differs between
// the master copy and any replica (missing rows included).
func (h *harness) divergence() map[string]int {
	out := make(map[string]int)
	for _, partID := range h.u.Partitions() {
		part, ok := h.u.Partition(partID)
		if !ok {
			continue
		}
		mEl := h.u.Element(part.Master().Element)
		if mEl == nil || mEl.Down() {
			continue
		}
		ms := mEl.Replica(partID).Store
		masterDig := make(map[string]uint64)
		ms.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
			masterDig[key] = antientropy.RowDigest(key, e, m)
			return true
		})
		n := 0
		for _, ref := range part.Replicas[1:] {
			el := h.u.Element(ref.Element)
			if el == nil || el.Down() {
				continue
			}
			st := el.Replica(partID).Store
			seen := make(map[string]bool)
			st.ForEachAny(func(key string, e store.Entry, m store.Meta) bool {
				if masterDig[key] != antientropy.RowDigest(key, e, m) {
					n++
				}
				seen[key] = true
				return true
			})
			for key := range masterDig {
				if !seen[key] {
					n++
				}
			}
		}
		if n > 0 {
			out[partID] = n
		}
	}
	return out
}

func (h *harness) eventf(format string, args ...any) {
	h.events = append(h.events, fmt.Sprintf(format, args...))
}
