package failure

import (
	"context"
	"testing"
	"time"

	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/wal"
)

func TestGlitchPartitionsAndHeals(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("a")
	net.AddSite("b")

	start := time.Now()
	done := GlitchAsync(context.Background(), net, []string{"a"}, 30*time.Millisecond)
	// Partition must be in effect promptly.
	deadline := time.Now().Add(time.Second)
	for !net.Partitioned("a", "b") {
		if time.Now().After(deadline) {
			t.Fatal("glitch never partitioned")
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	if net.Partitioned("a", "b") {
		t.Fatal("glitch did not heal")
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("glitch returned early")
	}
}

func TestGlitchCancelledHealsEarly(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("a")
	net.AddSite("b")
	ctx, cancel := context.WithCancel(context.Background())
	done := GlitchAsync(ctx, net, []string{"a"}, 10*time.Second)
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled glitch did not end")
	}
	if net.Partitioned("a", "b") {
		t.Fatal("cancelled glitch left the partition")
	}
}

func TestCrashFor(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	el := se.New(net, se.Config{
		ID: "se-1", Site: "a",
		WALDir: t.TempDir(), WALMode: wal.SyncEveryCommit,
	})
	defer el.Stop()
	pr, err := el.AddReplica("p1", store.Master)
	if err != nil {
		t.Fatal(err)
	}
	txn := pr.Store.Begin(store.ReadCommitted)
	txn.Put("k", store.Entry{"v": {"1"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	replayed, err := CrashFor(context.Background(), el, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if replayed["p1"] != 1 {
		t.Fatalf("replayed = %v", replayed)
	}
	if el.Down() {
		t.Fatal("element still down")
	}
}

func TestPlanRunsInOrder(t *testing.T) {
	var order []string
	p := &Plan{}
	p.Add(20*time.Millisecond, "second", func() { order = append(order, "second") })
	p.Add(0, "first", func() { order = append(order, "first") })
	fired := p.Run(context.Background())
	if len(fired) != 2 || fired[0] != "first" || fired[1] != "second" {
		t.Fatalf("fired = %v", fired)
	}
	if len(order) != 2 || order[0] != "first" {
		t.Fatalf("order = %v", order)
	}
}

func TestPlanContextStops(t *testing.T) {
	p := &Plan{}
	p.Add(0, "a", func() {})
	p.Add(10*time.Second, "never", func() { t.Error("late event fired") })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	fired := p.Run(ctx)
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestPlanAddPartition(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("a")
	net.AddSite("b")
	p := (&Plan{}).AddPartition(net, []string{"a"}, 0, 15*time.Millisecond)
	done := p.RunAsync(context.Background())
	time.Sleep(5 * time.Millisecond)
	if !net.Partitioned("a", "b") {
		t.Fatal("partition event did not fire")
	}
	<-done
	if net.Partitioned("a", "b") {
		t.Fatal("heal event did not fire")
	}
}

// TestPlanComposedPartitionAndCrash runs the E14-style composed
// schedule — a glitch overlapping an element crash — and checks the
// event interleaving and final state.
func TestPlanComposedPartitionAndCrash(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("a")
	net.AddSite("b")
	el := se.New(net, se.Config{ID: "se-b-0", Site: "b"})
	defer el.Stop()
	el.AddReplica("p1", store.Master)

	recovered := make(chan struct{})
	p := (&Plan{}).
		AddPartition(net, []string{"a"}, 0, 40*time.Millisecond).
		AddCrash(el, 10*time.Millisecond, 10*time.Millisecond, func(_ map[string]int, err error) {
			if err != nil {
				t.Errorf("recover: %v", err)
			}
			close(recovered)
		})
	fired := p.Run(context.Background())

	want := []string{"partition", "crash se-b-0", "recover se-b-0", "heal"}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	select {
	case <-recovered:
	case <-time.After(2 * time.Second):
		t.Fatal("recovery callback never fired")
	}
	if net.Partitioned("a", "b") {
		t.Fatal("partition left behind")
	}
	if el.Down() {
		t.Fatal("element left down")
	}
}

// TestPlanSimultaneousEventsKeepAddOrder pins the documented
// stable-sort behaviour: events at the same offset fire in Add order.
func TestPlanSimultaneousEventsKeepAddOrder(t *testing.T) {
	var order []string
	p := (&Plan{}).
		Add(0, "first", func() { order = append(order, "first") }).
		Add(0, "second", func() { order = append(order, "second") }).
		Add(0, "third", func() { order = append(order, "third") })
	p.Run(context.Background())
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("order = %v", order)
	}
}

// TestPlanOverlappingPartitions composes two glitches whose windows
// overlap: the second partition call supersedes the first, and the
// final heal leaves a whole network.
func TestPlanOverlappingPartitions(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	for _, s := range []string{"a", "b", "c"} {
		net.AddSite(s)
	}
	p := (&Plan{}).
		AddPartition(net, []string{"a"}, 0, 30*time.Millisecond).
		AddPartition(net, []string{"c"}, 10*time.Millisecond, 40*time.Millisecond)
	done := p.RunAsync(context.Background())

	time.Sleep(20 * time.Millisecond) // inside both windows
	if !net.Partitioned("c", "b") {
		t.Fatal("second glitch not in effect")
	}
	// The second Partition() regrouped the sites: a rejoined b.
	if net.Partitioned("a", "b") {
		t.Fatal("second partition should supersede the first")
	}
	<-done
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		if net.Partitioned(pair[0], pair[1]) {
			t.Fatalf("sites %v still partitioned after the plan", pair)
		}
	}
}

// TestPlanCancelSkipsLaterEvents pins the cancellation contract:
// events after the cancellation point never fire, so an aborted
// schedule leaves whatever fault state it had already injected.
func TestPlanCancelSkipsLaterEvents(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("a")
	net.AddSite("b")
	ctx, cancel := context.WithCancel(context.Background())
	p := (&Plan{}).
		AddPartition(net, []string{"a"}, 0, 10*time.Second)
	done := p.RunAsync(ctx)
	time.Sleep(5 * time.Millisecond)
	if !net.Partitioned("a", "b") {
		t.Fatal("partition event did not fire")
	}
	cancel()
	<-done
	// The heal event was skipped: the operator cancelled the plan
	// mid-glitch, so the partition deliberately remains.
	if !net.Partitioned("a", "b") {
		t.Fatal("cancelled plan fired the heal anyway")
	}
}

func TestPlanAddCrash(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	el := se.New(net, se.Config{ID: "se-1", Site: "a"})
	defer el.Stop()
	el.AddReplica("p1", store.Master)

	recovered := make(chan struct{})
	p := (&Plan{}).AddCrash(el, 0, 10*time.Millisecond, func(m map[string]int, err error) {
		if err != nil {
			t.Errorf("recover: %v", err)
		}
		close(recovered)
	})
	p.Run(context.Background())
	select {
	case <-recovered:
	case <-time.After(2 * time.Second):
		t.Fatal("recovery callback never fired")
	}
	if el.Down() {
		t.Fatal("element still down after plan")
	}
}
