package failure

import (
	"context"
	"testing"
	"time"

	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/wal"
)

func TestGlitchPartitionsAndHeals(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("a")
	net.AddSite("b")

	start := time.Now()
	done := GlitchAsync(context.Background(), net, []string{"a"}, 30*time.Millisecond)
	// Partition must be in effect promptly.
	deadline := time.Now().Add(time.Second)
	for !net.Partitioned("a", "b") {
		if time.Now().After(deadline) {
			t.Fatal("glitch never partitioned")
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	if net.Partitioned("a", "b") {
		t.Fatal("glitch did not heal")
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("glitch returned early")
	}
}

func TestGlitchCancelledHealsEarly(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("a")
	net.AddSite("b")
	ctx, cancel := context.WithCancel(context.Background())
	done := GlitchAsync(ctx, net, []string{"a"}, 10*time.Second)
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled glitch did not end")
	}
	if net.Partitioned("a", "b") {
		t.Fatal("cancelled glitch left the partition")
	}
}

func TestCrashFor(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	el := se.New(net, se.Config{
		ID: "se-1", Site: "a",
		WALDir: t.TempDir(), WALMode: wal.SyncEveryCommit,
	})
	defer el.Stop()
	pr, err := el.AddReplica("p1", store.Master)
	if err != nil {
		t.Fatal(err)
	}
	txn := pr.Store.Begin(store.ReadCommitted)
	txn.Put("k", store.Entry{"v": {"1"}})
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	replayed, err := CrashFor(context.Background(), el, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if replayed["p1"] != 1 {
		t.Fatalf("replayed = %v", replayed)
	}
	if el.Down() {
		t.Fatal("element still down")
	}
}

func TestPlanRunsInOrder(t *testing.T) {
	var order []string
	p := &Plan{}
	p.Add(20*time.Millisecond, "second", func() { order = append(order, "second") })
	p.Add(0, "first", func() { order = append(order, "first") })
	fired := p.Run(context.Background())
	if len(fired) != 2 || fired[0] != "first" || fired[1] != "second" {
		t.Fatalf("fired = %v", fired)
	}
	if len(order) != 2 || order[0] != "first" {
		t.Fatalf("order = %v", order)
	}
}

func TestPlanContextStops(t *testing.T) {
	p := &Plan{}
	p.Add(0, "a", func() {})
	p.Add(10*time.Second, "never", func() { t.Error("late event fired") })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	fired := p.Run(ctx)
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestPlanAddPartition(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	net.AddSite("a")
	net.AddSite("b")
	p := (&Plan{}).AddPartition(net, []string{"a"}, 0, 15*time.Millisecond)
	done := p.RunAsync(context.Background())
	time.Sleep(5 * time.Millisecond)
	if !net.Partitioned("a", "b") {
		t.Fatal("partition event did not fire")
	}
	<-done
	if net.Partitioned("a", "b") {
		t.Fatal("heal event did not fire")
	}
}

func TestPlanAddCrash(t *testing.T) {
	net := simnet.New(simnet.FastConfig())
	el := se.New(net, se.Config{ID: "se-1", Site: "a"})
	defer el.Stop()
	el.AddReplica("p1", store.Master)

	recovered := make(chan struct{})
	p := (&Plan{}).AddCrash(el, 0, 10*time.Millisecond, func(m map[string]int, err error) {
		if err != nil {
			t.Errorf("recover: %v", err)
		}
		close(recovered)
	})
	p.Run(context.Background())
	select {
	case <-recovered:
	case <-time.After(2 * time.Second):
		t.Fatal("recovery callback never fired")
	}
	if el.Down() {
		t.Fatal("element still down after plan")
	}
}
