// Package failure injects the faults the paper's trade-offs are
// about: backbone partitions and glitches (§2.5, §4.1), storage
// element crashes (§3.1), and composed failure schedules for the
// five-nines accounting of E14.
package failure

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/se"
	"repro/internal/simnet"
)

// Glitch partitions the listed sites away from the rest for the given
// duration, then heals: the "network glitch as short as 30 seconds"
// of §4.1. It blocks for the duration.
func Glitch(ctx context.Context, net *simnet.Network, side []string, d time.Duration) {
	net.Partition(side)
	defer net.Heal()
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// GlitchAsync runs Glitch in the background and returns a done
// channel.
func GlitchAsync(ctx context.Context, net *simnet.Network, side []string, d time.Duration) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		Glitch(ctx, net, side, d)
	}()
	return done
}

// CrashFor crashes an element, waits, then recovers it. It blocks for
// the duration and returns the recovery's replayed-record counts.
func CrashFor(ctx context.Context, el *se.Element, d time.Duration) (map[string]int, error) {
	el.Crash()
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
	return el.Recover()
}

// Event is one scheduled fault action.
type Event struct {
	// At is the offset from plan start.
	At time.Duration
	// Name labels the event in reports.
	Name string
	// Do performs the action.
	Do func()
}

// Plan is a deterministic failure schedule.
type Plan struct {
	mu     sync.Mutex
	events []Event
}

// Add appends an event.
func (p *Plan) Add(at time.Duration, name string, do func()) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events = append(p.events, Event{At: at, Name: name, Do: do})
	return p
}

// AddPartition schedules a partition of side at `at` healing after d.
func (p *Plan) AddPartition(net *simnet.Network, side []string, at, d time.Duration) *Plan {
	p.Add(at, "partition", func() { net.Partition(side) })
	p.Add(at+d, "heal", net.Heal)
	return p
}

// AddCrash schedules a crash of el at `at` with recovery after d.
// Recovery errors are delivered to onRecover (nil ignores them).
func (p *Plan) AddCrash(el *se.Element, at, d time.Duration, onRecover func(map[string]int, error)) *Plan {
	p.Add(at, "crash "+el.ID(), el.Crash)
	p.Add(at+d, "recover "+el.ID(), func() {
		replayed, err := el.Recover()
		if onRecover != nil {
			onRecover(replayed, err)
		}
	})
	return p
}

// Run fires the events at their offsets. It blocks until the last
// event fired or ctx ended, and returns the names of fired events.
func (p *Plan) Run(ctx context.Context) []string {
	p.mu.Lock()
	events := append([]Event(nil), p.events...)
	p.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	start := time.Now()
	var fired []string
	for _, ev := range events {
		wait := ev.At - time.Since(start)
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return fired
			}
		}
		ev.Do()
		fired = append(fired, ev.Name)
	}
	return fired
}

// RunAsync runs the plan in the background; the returned channel
// closes when done.
func (p *Plan) RunAsync(ctx context.Context) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx)
	}()
	return done
}
