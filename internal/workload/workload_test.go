package workload

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fe"
	"repro/internal/simnet"
	"repro/internal/subscriber"
)

func setup(t *testing.T, subs int) (Config, *core.UDR) {
	t.Helper()
	net := simnet.New(simnet.FastConfig())
	u, err := core.New(net, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)

	gen := subscriber.NewGenerator(u.Sites()...)
	var profiles []*subscriber.Profile
	for i := 0; i < subs; i++ {
		p := gen.Profile(i)
		if err := u.SeedDirect(p); err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}

	var fes []*fe.FE
	for _, site := range u.Sites() {
		fes = append(fes, fe.New(u.Net(), fe.HSS, site, "wl-fe"))
	}
	return Config{
		Subscribers: profiles,
		FEs:         fes,
		Mix:         DefaultMix(),
		Concurrency: 4,
		Seed:        1,
	}, u
}

func TestRunFixedOps(t *testing.T) {
	cfg, _ := setup(t, 12)
	cfg.Ops = 100
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stats := Run(ctx, cfg)
	if stats.Issued.Value() != 100 {
		t.Fatalf("issued = %d", stats.Issued.Value())
	}
	if stats.Failed.Value() != 0 {
		t.Fatalf("failed = %d on a healthy network", stats.Failed.Value())
	}
	if stats.Availability.Ratio() != 1 {
		t.Fatalf("availability = %v", stats.Availability.Ratio())
	}
	if stats.Latency.Count() != 100 {
		t.Fatalf("latency samples = %d", stats.Latency.Count())
	}
	var perProc int64
	for i := range stats.PerProc {
		perProc += stats.PerProc[i].Value()
	}
	if perProc != 100 {
		t.Fatalf("per-proc sum = %d", perProc)
	}
}

func TestRunUntilContextDone(t *testing.T) {
	cfg, _ := setup(t, 6)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	stats := Run(ctx, cfg)
	if stats.Issued.Value() == 0 {
		t.Fatal("nothing issued before deadline")
	}
}

func TestRoamingRatioUsesRemoteFEs(t *testing.T) {
	cfg, u := setup(t, 9)
	cfg.Ops = 150
	cfg.RoamingRatio = 1.0 // always roam
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stats := Run(ctx, cfg)
	if stats.Issued.Value() != 150 {
		t.Fatalf("issued = %d", stats.Issued.Value())
	}
	// Roaming procedures still succeed: slave reads or backbone
	// writes handle them.
	if stats.Availability.Ratio() != 1 {
		t.Fatalf("availability = %v", stats.Availability.Ratio())
	}
	_ = u
}

func TestPartitionShowsUpInAvailability(t *testing.T) {
	cfg, u := setup(t, 9)
	cfg.Ops = 120
	cfg.Mix = DefaultMix() // includes writes
	// Force roaming so procedures run on front-ends away from the
	// subscriber's home region; their writes must cross the backbone
	// to the partition master and fail during the partition.
	cfg.RoamingRatio = 1.0
	u.Net().Partition([]string{u.Sites()[0]})
	defer u.Net().Heal()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stats := Run(ctx, cfg)
	if stats.Failed.Value() == 0 {
		t.Fatal("write procedures through a partition all succeeded")
	}
	if stats.Availability.Ratio() == 1 {
		t.Fatal("availability unaffected by partition")
	}
}

func TestMixPickDistribution(t *testing.T) {
	m := DefaultMix()
	r := rand.New(rand.NewSource(1))
	counts := map[Procedure]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[m.pick(r)]++
	}
	// Every weighted procedure appears, roughly in proportion.
	for p := ProcLocationUpdate; p < procCount; p++ {
		if m[p] > 0 && counts[p] == 0 {
			t.Fatalf("procedure %s never picked", p)
		}
	}
	if counts[ProcLocationUpdate] < n/8 {
		t.Fatalf("LocationUpdate (weight .25) picked %d/%d", counts[ProcLocationUpdate], n)
	}
	if counts[ProcIMSRegister] > n/8 {
		t.Fatalf("IMSRegister (weight .05) picked %d/%d", counts[ProcIMSRegister], n)
	}
}

func TestReadOnlyMixHasNoWrites(t *testing.T) {
	m := ReadOnlyMix()
	if m[ProcLocationUpdate] != 0 || m[ProcAuthenticate] != 0 || m[ProcIMSRegister] != 0 {
		t.Fatal("read-only mix contains write procedures")
	}
}

func TestProcedureString(t *testing.T) {
	names := map[Procedure]string{
		ProcLocationUpdate: "LocationUpdate",
		ProcAuthenticate:   "Authenticate",
		ProcMOCall:         "MOCall",
		ProcMTCall:         "MTCall",
		ProcSMS:            "SMS",
		ProcIMSRegister:    "IMSRegister",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
	if Procedure(99).String() != "Unknown" {
		t.Error("unknown procedure string")
	}
}
