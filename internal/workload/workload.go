// Package workload generates the synthetic traffic the experiments
// drive the UDR with: network-procedure mixes at configurable rates
// (busy hour), roaming ratios (users leaving their home region,
// §3.5), and provisioning flows. Production traces are proprietary;
// the mixes below are derived from the paper's own figures (read-
// mostly FE traffic, 1–3 ops per mobile procedure, 5–6 per IMS
// procedure, a continuous trickle of provisioning).
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/fe"
	"repro/internal/metrics"
	"repro/internal/subscriber"
)

// Procedure names a network procedure the driver can issue.
type Procedure int

// Driven procedures.
const (
	ProcLocationUpdate Procedure = iota
	ProcAuthenticate
	ProcMOCall
	ProcMTCall
	ProcSMS
	ProcIMSRegister
	procCount
)

// String returns the procedure name.
func (p Procedure) String() string {
	switch p {
	case ProcLocationUpdate:
		return "LocationUpdate"
	case ProcAuthenticate:
		return "Authenticate"
	case ProcMOCall:
		return "MOCall"
	case ProcMTCall:
		return "MTCall"
	case ProcSMS:
		return "SMS"
	case ProcIMSRegister:
		return "IMSRegister"
	}
	return "Unknown"
}

// Mix holds relative procedure weights.
type Mix [procCount]float64

// DefaultMix approximates a busy-hour control-plane mix: mobility and
// calls dominate, IMS registrations are the rarer heavy procedure.
func DefaultMix() Mix {
	var m Mix
	m[ProcLocationUpdate] = 0.25
	m[ProcAuthenticate] = 0.20
	m[ProcMOCall] = 0.20
	m[ProcMTCall] = 0.15
	m[ProcSMS] = 0.15
	m[ProcIMSRegister] = 0.05
	return m
}

// ReadOnlyMix issues only read procedures (partition experiments that
// isolate the read path).
func ReadOnlyMix() Mix {
	var m Mix
	m[ProcMOCall] = 0.4
	m[ProcMTCall] = 0.3
	m[ProcSMS] = 0.3
	return m
}

// pick selects a procedure by weight.
func (m Mix) pick(r *rand.Rand) Procedure {
	total := 0.0
	for _, w := range m {
		total += w
	}
	x := r.Float64() * total
	for i, w := range m {
		x -= w
		if x < 0 {
			return Procedure(i)
		}
	}
	return ProcMOCall
}

// KeyDist selects which subscriber a procedure targets. Pickers are
// built per driver goroutine around that goroutine's seeded RNG, so a
// run is reproducible at any concurrency.
type KeyDist interface {
	// Name labels the profile in Stats and experiment reports.
	Name() string
	// Picker returns a draw function over [0, n).
	Picker(r *rand.Rand, n int) func() int
}

// Uniform is the classic flat draw (the pre-PR-7 behaviour and the
// default when Config.KeyDist is nil).
type Uniform struct{}

// Name implements KeyDist.
func (Uniform) Name() string { return "uniform" }

// Picker implements KeyDist.
func (Uniform) Picker(r *rand.Rand, n int) func() int {
	return func() int { return r.Intn(n) }
}

// Zipfian draws subscriber indexes with Zipf skew: low indexes are
// the hot set. S is the skew exponent (>1; busy-hour subscriber
// traffic is commonly modelled near s≈1.1) and V the value offset
// (≥1; 1 if zero).
type Zipfian struct {
	S float64
	V float64
}

// Name implements KeyDist.
func (z Zipfian) Name() string { return fmt.Sprintf("zipf-s%.2f", z.skew()) }

func (z Zipfian) skew() float64 {
	if z.S > 1 {
		return z.S
	}
	return 1.1
}

// Picker implements KeyDist.
func (z Zipfian) Picker(r *rand.Rand, n int) func() int {
	v := z.V
	if v < 1 {
		v = 1
	}
	zf := rand.NewZipf(r, z.skew(), v, uint64(n-1))
	return func() int { return int(zf.Uint64()) }
}

// HotSet models a registration storm: a fraction of subscribers (the
// first HotFraction of the population) receives HotProbability of the
// traffic, uniform within each class.
type HotSet struct {
	// HotFraction of the population that is hot (default 0.1).
	HotFraction float64
	// HotProbability that a draw targets the hot set (default 0.9).
	HotProbability float64
}

func (h HotSet) params() (frac, prob float64) {
	frac, prob = h.HotFraction, h.HotProbability
	if frac <= 0 || frac >= 1 {
		frac = 0.1
	}
	if prob <= 0 || prob > 1 {
		prob = 0.9
	}
	return frac, prob
}

// Name implements KeyDist.
func (h HotSet) Name() string {
	frac, prob := h.params()
	return fmt.Sprintf("hotset-%.0f/%.0f", frac*100, prob*100)
}

// Picker implements KeyDist.
func (h HotSet) Picker(r *rand.Rand, n int) func() int {
	frac, prob := h.params()
	hot := int(frac * float64(n))
	if hot < 1 {
		hot = 1
	}
	if hot >= n {
		return func() int { return r.Intn(n) }
	}
	return func() int {
		if r.Float64() < prob {
			return r.Intn(hot)
		}
		return hot + r.Intn(n-hot)
	}
}

// Stats aggregates a driver run.
type Stats struct {
	// Issued and Failed count procedures (Failed counts availability
	// failures only; business denials count as served).
	Issued metrics.Counter
	Failed metrics.Counter
	// Latency across all procedures.
	Latency metrics.Histogram
	// Availability derived from Issued/Failed.
	Availability metrics.Availability
	// PerProc counts per procedure.
	PerProc [procCount]metrics.Counter
	// Profile names the key distribution that drove the run.
	Profile string
}

// Config drives a workload run.
type Config struct {
	// Subscribers are the target population (profiles must already
	// be provisioned).
	Subscribers []*subscriber.Profile
	// FEs are the front-ends to spread procedures over. Procedures
	// run on the FE in the subscriber's home region unless a roaming
	// draw moves them elsewhere.
	FEs []*fe.FE
	// Mix weights the procedures.
	Mix Mix
	// RoamingRatio is the probability a procedure runs on a
	// non-home-region front-end (§3.5: "users stay within the home
	// region of the subscription most of the time").
	RoamingRatio float64
	// Concurrency is the number of driver goroutines.
	Concurrency int
	// Ops bounds the total procedures issued (0 = until ctx ends).
	Ops int
	// Seed for reproducibility.
	Seed int64
	// KeyDist selects which subscriber each procedure targets
	// (default Uniform{}). Zipfian/HotSet model busy-hour hot-key
	// traffic against a small popular subscriber set.
	KeyDist KeyDist
}

// Run drives the workload until ctx is cancelled or cfg.Ops
// procedures have been issued.
func Run(ctx context.Context, cfg Config) *Stats {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.KeyDist == nil {
		cfg.KeyDist = Uniform{}
	}
	stats := &Stats{Profile: cfg.KeyDist.Name()}
	var remaining chan struct{}
	if cfg.Ops > 0 {
		remaining = make(chan struct{}, cfg.Ops)
		for i := 0; i < cfg.Ops; i++ {
			remaining <- struct{}{}
		}
		close(remaining)
	}

	feBySite := make(map[string][]*fe.FE)
	for _, f := range cfg.FEs {
		feBySite[f.Site()] = append(feBySite[f.Site()], f)
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			pick := cfg.KeyDist.Picker(r, len(cfg.Subscribers))
			for {
				if remaining != nil {
					if _, ok := <-remaining; !ok {
						return
					}
				}
				select {
				case <-ctx.Done():
					return
				default:
				}
				issueOne(ctx, cfg, stats, r, pick, feBySite)
			}
		}(cfg.Seed + int64(w))
	}
	wg.Wait()
	return stats
}

// issueOne picks a subscriber, front-end and procedure, runs it, and
// records the outcome.
func issueOne(ctx context.Context, cfg Config, stats *Stats, r *rand.Rand, pick func() int, feBySite map[string][]*fe.FE) {
	sub := cfg.Subscribers[pick()]

	// Choose the serving front-end: home region unless roaming.
	var pool []*fe.FE
	if r.Float64() < cfg.RoamingRatio {
		// Roaming: any non-home site (fall back to all).
		for site, fes := range feBySite {
			if site != sub.HomeRegion {
				pool = append(pool, fes...)
			}
		}
	}
	if len(pool) == 0 {
		pool = feBySite[sub.HomeRegion]
	}
	if len(pool) == 0 {
		pool = cfg.FEs
	}
	f := pool[r.Intn(len(pool))]

	proc := cfg.Mix.pick(r)
	// IMS registration needs an HSS front-end and an IMS-enabled
	// subscription; degrade to authentication otherwise.
	if proc == ProcIMSRegister && (f.Kind() != fe.HSS || !sub.Services.IMSEnabled || len(sub.IMPUVals) == 0) {
		proc = ProcAuthenticate
	}

	start := time.Now()
	var err error
	switch proc {
	case ProcLocationUpdate:
		err = f.LocationUpdate(ctx, sub.IMSIVal, "mme-"+f.Site(), "area-"+f.Site(), f.Site() != sub.HomeRegion)
	case ProcAuthenticate:
		_, err = f.Authenticate(ctx, sub.IMSIVal)
	case ProcMOCall:
		err = f.MOCall(ctx, sub.MSISDNVal, r.Float64() < 0.05)
	case ProcMTCall:
		_, err = f.MTCall(ctx, sub.MSISDNVal)
	case ProcSMS:
		_, err = f.SMSDeliver(ctx, sub.MSISDNVal)
	case ProcIMSRegister:
		err = f.IMSRegister(ctx, sub.IMPUVals[0], "scscf-"+f.Site())
	}
	stats.Latency.Record(time.Since(start))
	stats.Issued.Inc()
	stats.PerProc[proc].Inc()
	if err != nil && !isBusiness(err) {
		stats.Failed.Inc()
		stats.Availability.Failure()
	} else {
		stats.Availability.Success()
	}
}

func isBusiness(err error) bool {
	for _, b := range []error{fe.ErrBarred, fe.ErrInactive, fe.ErrNotIMS} {
		if err == b {
			return true
		}
	}
	return false
}
