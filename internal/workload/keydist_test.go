package workload

import (
	"math/rand"
	"testing"
)

func drawCounts(t *testing.T, d KeyDist, n, draws int, seed int64) []int {
	t.Helper()
	pick := d.Picker(rand.New(rand.NewSource(seed)), n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		x := pick()
		if x < 0 || x >= n {
			t.Fatalf("%s: draw %d out of range [0,%d)", d.Name(), x, n)
		}
		counts[x]++
	}
	return counts
}

func TestKeyDistDeterministic(t *testing.T) {
	for _, d := range []KeyDist{Uniform{}, Zipfian{S: 1.1}, HotSet{}} {
		a := drawCounts(t, d, 100, 2000, 42)
		b := drawCounts(t, d, 100, 2000, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at index %d: %d vs %d",
					d.Name(), i, a[i], b[i])
			}
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	counts := drawCounts(t, Zipfian{S: 1.1}, 1000, 20000, 7)
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	// Zipf s=1.1 concentrates well over half the mass on the top 10%
	// of keys; uniform would put ~10% there.
	if head < 10000 {
		t.Fatalf("top-100 of 1000 drew %d/20000 — not skewed", head)
	}
	if name := (Zipfian{S: 1.3}).Name(); name != "zipf-s1.30" {
		t.Fatalf("Name() = %q", name)
	}
}

func TestHotSetSplit(t *testing.T) {
	counts := drawCounts(t, HotSet{HotFraction: 0.1, HotProbability: 0.9}, 200, 20000, 11)
	hot := 0
	for i := 0; i < 20; i++ {
		hot += counts[i]
	}
	if hot < 17000 || hot > 19500 {
		t.Fatalf("hot set drew %d/20000, want ≈18000", hot)
	}
}
