package udr

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/ldap"
	"repro/internal/subscriber"
)

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// newStack builds a UDR on a fast network and an LDAP client wired
// through the real BER codec over an in-memory pipe — the full
// northbound stack of cmd/udrd without the TCP socket.
func newStack(t *testing.T) (*UDR, *Network, *ldap.Client) {
	t.Helper()
	network := NewNetwork(FastNetConfig())
	u, err := New(network, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)

	site := u.Sites()[0]
	session := NewSession(network, Addr(site+"/ldap-bridge"), site, PolicyPS)
	server := NewLDAPServer(session)
	cConn, sConn := net.Pipe()
	go func() { _ = server.ServeConn(sConn) }()
	client := ldap.NewClient(cConn)
	t.Cleanup(func() { _ = client.Close() })
	return u, network, client
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	ctx := ctxT(t)
	network := NewNetwork(FastNetConfig())
	u, err := New(network, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()

	ps := NewSession(network, "eu-south/ps", "eu-south", PolicyPS)
	prof := NewGenerator(u.Sites()...).Profile(7)
	if _, err := ps.Provision(ctx, prof); err != nil {
		t.Fatal(err)
	}
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}

	fe := NewSession(network, "americas/fe", "americas", PolicyFE)
	got, _, _, err := fe.ReadProfile(ctx, MSISDN(prof.MSISDNVal))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != prof.ID {
		t.Fatalf("got %s", got.ID)
	}

	// Typed identity helpers resolve equally.
	for _, id := range []Identity{IMSI(prof.IMSIVal), IMPI(prof.IMPIVal), IMPU(prof.IMPUVals[0])} {
		if _, _, _, err := fe.ReadProfile(ctx, id); err != nil {
			t.Fatalf("read by %v: %v", id, err)
		}
	}
}

func TestPublicAPIFrontEndsAndPS(t *testing.T) {
	ctx := ctxT(t)
	network := NewNetwork(FastNetConfig())
	u, err := New(network, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()

	system := NewPS(network, "eu-south", "ps-1")
	prof := NewGenerator(u.Sites()...).Profile(11)
	if err := system.Provision(ctx, prof); err != nil {
		t.Fatal(err)
	}
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}

	hss := NewHSSFE(network, prof.HomeRegion, "hss-1")
	if _, err := hss.Authenticate(ctx, prof.IMSIVal); err != nil {
		t.Fatal(err)
	}
	hlr := NewHLRFE(network, prof.HomeRegion, "hlr-1")
	if err := hlr.MOCall(ctx, prof.MSISDNVal, false); err != nil {
		t.Fatal(err)
	}
}

func TestLDAPStackSearch(t *testing.T) {
	u, network, client := newStack(t)
	ctx := ctxT(t)
	prof := NewGenerator(u.Sites()...).Profile(21)
	if err := u.SeedDirect(prof); err != nil {
		t.Fatal(err)
	}
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}
	_ = network

	if r, err := client.Bind("cn=test", "pw"); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("bind: %v %v", r, err)
	}
	entries, res, err := client.Search(&ldap.SearchRequest{
		BaseDN: subscriber.BaseDN,
		Scope:  ldap.ScopeWholeSubtree,
		Filter: ldap.Eq("msisdn", prof.MSISDNVal),
	})
	if err != nil || res.Code != ldap.ResultSuccess {
		t.Fatalf("search: %v %v", res, err)
	}
	if len(entries) != 1 || entries[0].DN != DN(prof.ID) {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Attrs["imsi"][0] != prof.IMSIVal {
		t.Fatalf("attrs = %v", entries[0].Attrs)
	}

	// Base-object read by DN.
	entries, res, err = client.Search(&ldap.SearchRequest{
		BaseDN: DN(prof.ID),
		Scope:  ldap.ScopeBaseObject,
		Filter: ldap.Present("objectClass"),
	})
	if err != nil || res.Code != ldap.ResultSuccess || len(entries) != 1 {
		t.Fatalf("base search: %v %v %v", entries, res, err)
	}
}

func TestLDAPStackProvisionModifyDelete(t *testing.T) {
	u, _, client := newStack(t)
	ctx := ctxT(t)

	prof := NewGenerator(u.Sites()...).Profile(31)
	entry := prof.ToEntry()
	attrs := make(map[string][]string, len(entry))
	for k, v := range entry {
		attrs[k] = v
	}

	// Provision through an LDAP transaction (the PS flow of §2.4).
	if r, err := client.TxnBegin(); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("txn begin: %v %v", r, err)
	}
	if r, err := client.Add(DN(prof.ID), attrs); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("add: %v %v", r, err)
	}
	if r, err := client.TxnCommit(); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("txn commit: %v %v", r, err)
	}

	// Readable through a session.
	sess := NewSession(u.Net(), "eu-south/check", u.Sites()[0], PolicyPS)
	got, _, _, err := sess.ReadProfile(ctx, IMSI(prof.IMSIVal))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != prof.ID {
		t.Fatalf("got %s", got.ID)
	}

	// Modify over LDAP.
	if r, err := client.Modify(DN(prof.ID), []ldap.Change{
		{Op: ldap.ChangeReplace, Attr: "barPremium", Vals: []string{"TRUE"}},
	}); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("modify: %v %v", r, err)
	}
	if r, err := client.Compare(DN(prof.ID), "barPremium", "TRUE"); err != nil || r.Code != ldap.ResultCompareTrue {
		t.Fatalf("compare: %v %v", r, err)
	}

	// Delete over LDAP.
	if r, err := client.Delete(DN(prof.ID)); err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("delete: %v %v", r, err)
	}
	if _, _, _, err := sess.ReadProfile(ctx, IMSI(prof.IMSIVal)); err == nil {
		t.Fatal("deleted subscription still readable")
	}
}

func TestLDAPStackUnavailableDuringPartition(t *testing.T) {
	u, network, client := newStack(t)
	ctx := ctxT(t)
	prof := NewGenerator(u.Sites()...).Profile(41)
	// Home the subscription away from the bridge's site.
	prof.HomeRegion = u.Sites()[1]
	if err := u.SeedDirect(prof); err != nil {
		t.Fatal(err)
	}
	if err := u.WaitReplication(ctx); err != nil {
		t.Fatal(err)
	}

	network.Partition([]string{u.Sites()[0]})
	defer network.Heal()
	// A write through the PS-policy LDAP bridge fails with
	// unavailable: the LDAP face of C-over-A.
	r, err := client.Modify(DN(prof.ID), []ldap.Change{
		{Op: ldap.ChangeReplace, Attr: "smsEnabled", Vals: []string{"FALSE"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != ldap.ResultUnavailable {
		t.Fatalf("result = %v, want unavailable", r.Code)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 23 {
		t.Fatalf("experiments = %v", ids)
	}
	title, source, ok := DescribeExperiment("E3")
	if !ok || title == "" || source == "" {
		t.Fatal("describe failed")
	}
	rep, err := RunExperiment(ctxT(t), "E8", ExperimentOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("E8 via facade failed:\n%s", rep)
	}
}

// TestLDAPStatusExtendedOp exercises the OaM status dump through the
// full LDAP stack.
func TestLDAPStatusExtendedOp(t *testing.T) {
	network := NewNetwork(FastNetConfig())
	u, err := New(network, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Stop)
	site := u.Sites()[0]
	session := NewSession(network, Addr(site+"/ldap-bridge"), site, PolicyPS)
	backend := NewLDAPBackendWithTopology(session, u)
	server := ldap.NewServer(backend)
	cConn, sConn := net.Pipe()
	go func() { _ = server.ServeConn(sConn) }()
	client := ldap.NewClient(cConn)
	t.Cleanup(func() { _ = client.Close() })

	text, r, err := client.Status()
	if err != nil || r.Code != ldap.ResultSuccess {
		t.Fatalf("status: %v %v", r, err)
	}
	for _, want := range []string{"sites:", "partition p-", "master", "slave"} {
		if !strings.Contains(text, want) {
			t.Fatalf("status missing %q:\n%s", want, text)
		}
	}
}
