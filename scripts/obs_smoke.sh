#!/bin/sh
# obs_smoke.sh — boot udrd with the admin HTTP surface and verify the
# scrape contract end to end: /healthz answers 200, /metrics returns a
# non-empty Prometheus exposition, and the acceptance metric families
# are present. Fails on any non-200 or an empty body. CI runs this as
# the obs-smoke job; locally: make obs-smoke.
set -eu

ADMIN_ADDR="${ADMIN_ADDR:-127.0.0.1:19611}"
LDAP_ADDR="${LDAP_ADDR:-127.0.0.1:13890}"
WORKDIR="$(mktemp -d)"
UDRD_PID=""

cleanup() {
    [ -n "$UDRD_PID" ] && kill "$UDRD_PID" 2>/dev/null || true
    [ -n "$UDRD_PID" ] && wait "$UDRD_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

fetch() {
    # fetch <url> <outfile>: curl when present, else a tiny Go helper —
    # CI images have curl, developer sandboxes may not.
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -o "$2" "$1"
    else
        go run ./scripts/httpget "$1" >"$2"
    fi
}

echo "obs-smoke: building udrd"
go build -o "$WORKDIR/udrd" ./cmd/udrd

echo "obs-smoke: starting udrd (admin on $ADMIN_ADDR)"
"$WORKDIR/udrd" \
    -addr "$LDAP_ADDR" \
    -admin "$ADMIN_ADDR" \
    -subs 20 \
    -wal-dir "$WORKDIR/wal" -wal-sync \
    -checkpoint-interval 500ms \
    -durability quorum -quorum-policy majority \
    >"$WORKDIR/udrd.log" 2>&1 &
UDRD_PID=$!

# Poll /healthz until the daemon is up (or fail after ~10s).
i=0
until fetch "http://$ADMIN_ADDR/healthz" "$WORKDIR/healthz.json" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: FAIL — /healthz never answered" >&2
        cat "$WORKDIR/udrd.log" >&2
        exit 1
    fi
    if ! kill -0 "$UDRD_PID" 2>/dev/null; then
        echo "obs-smoke: FAIL — udrd exited during startup" >&2
        cat "$WORKDIR/udrd.log" >&2
        exit 1
    fi
    sleep 0.2
done
grep -q '"status": "ok"' "$WORKDIR/healthz.json" || {
    echo "obs-smoke: FAIL — /healthz body unexpected:" >&2
    cat "$WORKDIR/healthz.json" >&2
    exit 1
}
echo "obs-smoke: /healthz ok"

fetch "http://$ADMIN_ADDR/metrics" "$WORKDIR/metrics.txt"
[ -s "$WORKDIR/metrics.txt" ] || {
    echo "obs-smoke: FAIL — /metrics returned an empty body" >&2
    exit 1
}

# The acceptance metric families (ISSUE 6): site-labeled per-op latency
# histogram, replication queue depth, WAL fsyncs-per-commit ratio,
# anti-entropy rows shipped, migration-progress gauge. ISSUE 7 adds
# the FE/PoA read-cache counters; ISSUE 8 the quorum-durability
# families (the daemon above runs with -durability quorum); ISSUE 9
# the incremental-checkpoint families (the daemon above runs with
# -checkpoint-interval); ISSUE 10 the request-tracing counters.
for family in \
    "udr_poa_op_latency_seconds histogram" \
    "udr_replication_queue_depth gauge" \
    "udr_replication_acks_pending gauge" \
    "udr_replication_quorum_size gauge" \
    "udr_replication_quorum_ack_wait_seconds histogram" \
    "udr_wal_fsyncs_per_commit gauge" \
    "udr_antientropy_rows_shipped_total counter" \
    "udr_migration_phase gauge" \
    "udr_fe_cache_hits_total counter" \
    "udr_fe_cache_misses_total counter" \
    "udr_fe_cache_evictions_total counter" \
    "udr_fe_cache_invalidations_total counter" \
    "udr_fe_cache_entries gauge" \
    "udr_wal_checkpoints_total counter" \
    "udr_wal_checkpoint_duration_seconds gauge" \
    "udr_wal_checkpoint_bytes gauge" \
    "udr_wal_checkpoint_csn gauge" \
    "udr_wal_segments gauge" \
    "udr_trace_spans_total counter" \
    "udr_trace_sampled_total counter" \
    "udr_trace_dropped_total counter"; do
    if ! grep -q "^# TYPE $family\$" "$WORKDIR/metrics.txt"; then
        echo "obs-smoke: FAIL — missing family: # TYPE $family" >&2
        exit 1
    fi
done
echo "obs-smoke: all acceptance metric families present"

# A real labeled sample proves the topology collectors ran.
grep -q '^udr_partition_rows{site=' "$WORKDIR/metrics.txt" || {
    echo "obs-smoke: FAIL — no labeled udr_partition_rows sample" >&2
    exit 1
}

# With a 500ms cadence at least one checkpoint must have completed by
# now on every element; a labeled non-zero sample proves the ticker
# and the stats plumbing are live.
sleep 1
fetch "http://$ADMIN_ADDR/metrics" "$WORKDIR/metrics2.txt"
grep -q '^udr_wal_checkpoints_total{site=' "$WORKDIR/metrics2.txt" || {
    echo "obs-smoke: FAIL — no labeled udr_wal_checkpoints_total sample" >&2
    exit 1
}
if ! grep '^udr_wal_checkpoints_total{site=' "$WORKDIR/metrics2.txt" | grep -qv ' 0$'; then
    echo "obs-smoke: FAIL — no checkpoint completed under -checkpoint-interval" >&2
    grep '^udr_wal_checkpoints_total' "$WORKDIR/metrics2.txt" >&2
    exit 1
fi
echo "obs-smoke: checkpoints ticking"

# The tracing surface answers even when nothing slow happened yet: a
# 200 with a well-formed (possibly empty) listing.
fetch "http://$ADMIN_ADDR/trace/slow" "$WORKDIR/trace_slow.json"
grep -q '"traces"' "$WORKDIR/trace_slow.json" || {
    echo "obs-smoke: FAIL — /trace/slow body unexpected" >&2
    cat "$WORKDIR/trace_slow.json" >&2
    exit 1
}
echo "obs-smoke: /trace/slow ok"

fetch "http://$ADMIN_ADDR/status" "$WORKDIR/status.json"
grep -q '"partitions"' "$WORKDIR/status.json" || {
    echo "obs-smoke: FAIL — /status body unexpected" >&2
    exit 1
}
grep -q '"durability": "quorum"' "$WORKDIR/status.json" || {
    echo "obs-smoke: FAIL — /status missing per-partition durability level" >&2
    exit 1
}
echo "obs-smoke: /status ok"

echo "obs-smoke: PASS ($(grep -c '^# TYPE ' "$WORKDIR/metrics.txt") metric families exported)"
