// Command httpget is a curl fallback for scripts/obs_smoke.sh: GET a
// URL, print the body to stdout, exit non-zero on any error or
// non-2xx status.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: httpget <url>")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		fmt.Fprintf(os.Stderr, "httpget: %s: %s\n", os.Args[1], resp.Status)
		os.Exit(1)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
