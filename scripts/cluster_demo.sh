#!/bin/sh
# cluster_demo.sh — the "production surface" demo: three udrd nodes
# serving real TCP LDAP with admin HTTP listeners, a CLI workload
# against each, one node killed mid-run. Verifies that the survivors
# keep answering /metrics and /trace/slow while the demo runs, that
# the killed node exits cleanly with its one-line shutdown summary
# (ops served, last CSN, traces flushed), and that sampled request
# traces are reachable over both HTTP and the udrctl LDAP extended
# op. CI runs this as the cluster-demo job; locally: make cluster-demo.
set -eu

HOST="${HOST:-127.0.0.1}"
LDAP_BASE="${LDAP_BASE:-13901}"  # nodes listen on BASE, BASE+1, BASE+2
ADMIN_BASE="${ADMIN_BASE:-19621}"
WORKDIR="$(mktemp -d)"
PIDS=""

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

fetch() {
    # fetch <url> <outfile>: curl when present, else a tiny Go helper —
    # CI images have curl, developer sandboxes may not.
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -o "$2" "$1"
    else
        go run ./scripts/httpget "$1" >"$2"
    fi
}

ldap_port() { echo $((LDAP_BASE + $1 - 1)); }
admin_port() { echo $((ADMIN_BASE + $1 - 1)); }

echo "cluster-demo: building udrd + udrctl"
go build -o "$WORKDIR/udrd" ./cmd/udrd
go build -o "$WORKDIR/udrctl" ./cmd/udrctl

# Three nodes. Each udrd hosts a full geo-replicated UDR (three sites,
# quorum durability, WAL fsync) and fronts it with LDAP + admin HTTP on
# its own ports; sampling at rate 1 so every request leaves a trace.
for n in 1 2 3; do
    "$WORKDIR/udrd" \
        -addr "$HOST:$(ldap_port $n)" \
        -admin "$HOST:$(admin_port $n)" \
        -subs 10 \
        -wal-dir "$WORKDIR/wal$n" -wal-sync \
        -durability quorum -quorum-policy majority \
        -trace-sample 1 \
        >"$WORKDIR/node$n.log" 2>&1 &
    PIDS="$PIDS $!"
    eval "PID$n=$!"
done
echo "cluster-demo: started 3 nodes (LDAP $(ldap_port 1)-$(ldap_port 3), admin $(admin_port 1)-$(admin_port 3))"

for n in 1 2 3; do
    i=0
    until fetch "http://$HOST:$(admin_port $n)/healthz" "$WORKDIR/healthz$n.json" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "cluster-demo: FAIL — node $n /healthz never answered" >&2
            cat "$WORKDIR/node$n.log" >&2
            exit 1
        fi
        sleep 0.2
    done
done
echo "cluster-demo: all nodes healthy"

# Workload: reads and writes through every node's LDAP interface. The
# -trace-sample 1 daemons record a trace per operation.
for n in 1 2 3; do
    a="$HOST:$(ldap_port $n)"
    "$WORKDIR/udrctl" -addr "$a" get sub-00000001 >/dev/null
    "$WORKDIR/udrctl" -addr "$a" search '(msisdn=34600000003)' >/dev/null
    "$WORKDIR/udrctl" -addr "$a" set sub-00000002 servingNode "mme-demo-$n" >/dev/null
    "$WORKDIR/udrctl" -addr "$a" set sub-00000005 servingNode "sgsn-demo-$n" >/dev/null
done
echo "cluster-demo: workload done (reads + quorum writes on every node)"

# The CLI trace surface answers over LDAP on a live node.
"$WORKDIR/udrctl" -addr "$HOST:$(ldap_port 1)" trace recent >"$WORKDIR/trace_cli.txt"
grep -q 'spans' "$WORKDIR/trace_cli.txt" || {
    echo "cluster-demo: FAIL — udrctl trace recent listed nothing" >&2
    cat "$WORKDIR/trace_cli.txt" >&2
    exit 1
}
echo "cluster-demo: udrctl trace recent lists sampled traces"

# Kill node 3 mid-run and let the survivors carry on.
kill -TERM "$PID3"
wait "$PID3" 2>/dev/null || true
grep -q 'udrd: shutdown after' "$WORKDIR/node3.log" || {
    echo "cluster-demo: FAIL — killed node logged no shutdown summary" >&2
    cat "$WORKDIR/node3.log" >&2
    exit 1
}
echo "cluster-demo: node 3 exited cleanly: $(grep 'udrd: shutdown after' "$WORKDIR/node3.log")"

# Survivors still serve traffic and the full observability surface.
for n in 1 2; do
    a="$HOST:$(admin_port $n)"
    "$WORKDIR/udrctl" -addr "$HOST:$(ldap_port $n)" get sub-00000004 >/dev/null

    fetch "http://$a/metrics" "$WORKDIR/metrics$n.txt"
    for family in udr_trace_spans_total udr_trace_sampled_total udr_poa_op_latency_seconds; do
        grep -q "^# TYPE $family" "$WORKDIR/metrics$n.txt" || {
            echo "cluster-demo: FAIL — node $n /metrics missing $family" >&2
            exit 1
        }
    done
    if ! grep '^udr_trace_sampled_total' "$WORKDIR/metrics$n.txt" | grep -qv ' 0$'; then
        echo "cluster-demo: FAIL — node $n sampled no traces at rate 1" >&2
        grep '^udr_trace_' "$WORKDIR/metrics$n.txt" >&2
        exit 1
    fi

    fetch "http://$a/trace/slow" "$WORKDIR/trace_slow$n.json"
    grep -q '"traces"' "$WORKDIR/trace_slow$n.json" || {
        echo "cluster-demo: FAIL — node $n /trace/slow body unexpected" >&2
        cat "$WORKDIR/trace_slow$n.json" >&2
        exit 1
    }
    fetch "http://$a/trace/recent" "$WORKDIR/trace_recent$n.json"
    grep -q '"traceId"' "$WORKDIR/trace_recent$n.json" || {
        echo "cluster-demo: FAIL — node $n /trace/recent holds no traces" >&2
        cat "$WORKDIR/trace_recent$n.json" >&2
        exit 1
    }
done
echo "cluster-demo: survivors serve /metrics, /trace/recent and /trace/slow"

echo "cluster-demo: PASS"
