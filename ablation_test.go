// Ablation benchmarks: each design decision from DESIGN.md §6 with
// its alternative, so the cost/benefit of the paper's choices is
// measurable in isolation. Network latency is zeroed; the benchmarks
// isolate processing and routing costs (the latency effects of each
// choice are measured by experiments E4, E5, E9).
package udr

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/locator"
	"repro/internal/replication"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
)

// benchReadLoop drives FE reads against a UDR.
func benchReadLoop(b *testing.B, net *simnet.Network, u *core.UDR, profiles []*subscriber.Profile) {
	b.Helper()
	site := u.Sites()[0]
	sess := core.NewSession(net, simnet.MakeAddr(site, "abl-fe"), site, core.PolicyFE)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profiles[i%len(profiles)]
		if _, err := sess.Exec(ctx, core.ExecReq{
			Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
			Ops:      []se.TxnOp{{Kind: se.TxnGet}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWriteLoop drives PS writes against a UDR.
func benchWriteLoop(b *testing.B, net *simnet.Network, u *core.UDR, profiles []*subscriber.Profile) {
	b.Helper()
	site := u.Sites()[0]
	sess := core.NewSession(net, simnet.MakeAddr(site, "abl-ps"), site, core.PolicyPS)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profiles[i%len(profiles)]
		if _, err := sess.Exec(ctx, core.ExecReq{
			Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
			Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
				Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{"b"},
			}}}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReplicationFactor sweeps RF 1..3: the cost of the
// paper's geographic redundancy on the write path (each extra copy is
// one more background shipping stream).
func BenchmarkAblationReplicationFactor(b *testing.B) {
	for rf := 1; rf <= 3; rf++ {
		b.Run(fmt.Sprintf("rf=%d", rf), func(b *testing.B) {
			net, u, profiles := benchUDR(b, 300, func(c *core.Config) {
				c.ReplicationFactor = rf
			})
			benchWriteLoop(b, net, u, profiles)
		})
	}
}

// BenchmarkAblationSlaveReads compares the §3.3.2 decision (FE slave
// reads on) against master-only routing on the read path.
func BenchmarkAblationSlaveReads(b *testing.B) {
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("slaveReads=%v", on), func(b *testing.B) {
			net, u, profiles := benchUDR(b, 300, func(c *core.Config) {
				c.FESlaveReads = on
			})
			benchReadLoop(b, net, u, profiles)
		})
	}
}

// BenchmarkAblationLocatorMode compares provisioned maps (§3.3.1)
// against cached maps with a warm cache; the cold-miss fan-out cost
// is measured by E9.
func BenchmarkAblationLocatorMode(b *testing.B) {
	for _, mode := range []locator.Mode{locator.Provisioned, locator.Cached} {
		b.Run(mode.String(), func(b *testing.B) {
			net, u, profiles := benchUDR(b, 300, func(c *core.Config) {
				c.LocatorMode = mode
			})
			// Warm the cached stage so the steady state is measured.
			site := u.Sites()[0]
			sess := core.NewSession(net, simnet.MakeAddr(site, "warm"), site, core.PolicyFE)
			ctx := context.Background()
			for _, p := range profiles {
				sess.Exec(ctx, core.ExecReq{
					Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
					Ops:      []se.TxnOp{{Kind: se.TxnGet}},
				})
			}
			benchReadLoop(b, net, u, profiles)
		})
	}
}

// BenchmarkAblationDurability sweeps the §5 durability levels on the
// write path with zero network latency, isolating the coordination
// overhead (latency effects are E4/E12's subject).
func BenchmarkAblationDurability(b *testing.B) {
	for _, d := range []replication.Durability{replication.Async, replication.DualSeq, replication.SyncAll} {
		b.Run(d.String(), func(b *testing.B) {
			net, u, profiles := benchUDR(b, 300, func(c *core.Config) {
				c.Durability = d
			})
			benchWriteLoop(b, net, u, profiles)
		})
	}
}

// BenchmarkAblationMultiMaster compares the paper's master/slave
// write path against §5's multi-master (local-replica) write path.
func BenchmarkAblationMultiMaster(b *testing.B) {
	for _, mm := range []bool{false, true} {
		b.Run(fmt.Sprintf("multiMaster=%v", mm), func(b *testing.B) {
			net, u, profiles := benchUDR(b, 300, func(c *core.Config) {
				c.MultiMaster = mm
			})
			benchWriteLoop(b, net, u, profiles)
		})
	}
}
