GO ?= go

.PHONY: build test bench lint clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run, what CI executes.
test-race:
	$(GO) test -race ./...

# Primitive benchmarks plus the quick-mode experiment benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchtime=1x ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f udrd udrctl udrbench provision *.test bench.out cpu.prof mem.prof
