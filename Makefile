GO ?= go

# Benchmarks included in the archived perf trajectory (bench-json).
SMOKE_BENCH ?= ^(BenchmarkStoreRead|BenchmarkStoreReadParallel|BenchmarkStoreCommit|BenchmarkStoreCommitParallel|BenchmarkStoreMixedParallel|BenchmarkStoreFindIndexed|BenchmarkFEReadPath|BenchmarkFEReadPathParallel|BenchmarkFECachedRead|BenchmarkFECachedReadParallel|BenchmarkFEHotKeyMixedCached|BenchmarkReplicationApply|BenchmarkWALAppendSync|BenchmarkWALGroupCommitParallel|BenchmarkCommitDurableParallel|BenchmarkCommitQuorum|BenchmarkCommitSyncAll|BenchmarkMigratePartition|BenchmarkTracedCommit|BenchmarkUntracedCommit)$$
SMOKE_BENCHTIME ?= 2000x
# Heavy 100k-row scale benchmarks: run once each (throughput/footprint
# figures, not per-op latencies) and appended to the same snapshot.
SCALE_BENCH ?= ^(BenchmarkWALCheckpoint|BenchmarkWALRecover|BenchmarkStoreResident)$$
BENCH_JSON ?= BENCH_PR10.json

.PHONY: build test test-race bench bench-json chaos chaos-long obs-smoke cluster-demo scale-smoke lint clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run, what CI executes.
test-race:
	$(GO) test -race ./...

# Deterministic chaos profile (what CI's chaos-smoke job runs) and the
# long soak. Failures dump seed+schedule+history reproducers under
# chaos-repro/ when CHAOS_REPRO_DIR is set.
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/consistency/

chaos-long:
	$(GO) test -race -timeout 1800s -run TestChaosSoak -chaos.long -v ./internal/consistency/

# Primitive benchmarks plus the quick-mode experiment benchmarks.
bench:
	$(GO) test -run xxx -bench . -benchtime=1x ./...

# Short benchmark suite → machine-readable perf snapshot (the per-PR
# trajectory; CI runs this as the smoke-bench job).
bench-json:
	( $(GO) test -run xxx -bench '$(SMOKE_BENCH)' -benchtime=$(SMOKE_BENCHTIME) . && \
	  $(GO) test -run xxx -bench '$(SCALE_BENCH)' -benchtime=1x . ) \
	  | tee bench.out | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# Boot udrd -admin and verify the /healthz + /metrics scrape contract
# (the acceptance metric families). CI runs this as the obs-smoke job.
obs-smoke:
	sh scripts/obs_smoke.sh

# Three udrd nodes over real TCP LDAP: provision through one, kill it,
# verify the survivors' /metrics + /trace/slow surfaces and the
# shutdown summary line. CI runs this as the cluster-demo job.
cluster-demo:
	sh scripts/cluster_demo.sh

# Provision ~100k subscribers, checkpoint, crash, recover; assert the
# recovered digest and the recovery-time budget (CI's scale-smoke job).
scale-smoke:
	SCALE_SMOKE=1 $(GO) test -race -run TestScaleSmoke -v ./internal/wal/

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f udrd udrctl udrbench provision *.test bench.out cpu.prof mem.prof
