// Benchmarks regenerating the paper's figures and quantitative
// claims. Each BenchmarkE* target runs the corresponding experiment
// (the same code `cmd/udrbench -run=<id>` prints in full); the
// remaining benchmarks measure the primitive costs the experiments
// build on. See EXPERIMENTS.md for the experiment ↔ paper index.
package udr

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/antientropy"
	"repro/internal/btree"
	"repro/internal/chash"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ldap"
	"repro/internal/locator"
	"repro/internal/replication"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workload"
)

// benchExperiment runs one experiment per iteration in quick mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(ctx, id, experiments.Options{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed() {
			b.Fatalf("%s failed:\n%s", id, rep)
		}
	}
}

func BenchmarkE1Resilience(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2Provisioning(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3Partition(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4Replication(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5SlaveReads(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6PSReads(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7Capacity(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8Locator(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9ScaleOut(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10Batch(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11MultiMaster(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12Durability(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13Latency(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14FiveNines(b *testing.B)   { benchExperiment(b, "E14") }
func BenchmarkE15Procedures(b *testing.B)  { benchExperiment(b, "E15") }
func BenchmarkE16AntiEntropy(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17Concurrency(b *testing.B) { benchExperiment(b, "E17") }
func BenchmarkE18GroupCommit(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE20Rebalance(b *testing.B)   { benchExperiment(b, "E20") }
func BenchmarkE22FECache(b *testing.B)     { benchExperiment(b, "E22") }
func BenchmarkE24Checkpoint(b *testing.B)  { benchExperiment(b, "E24") }

// --- Primitive benchmarks -------------------------------------------

// BenchmarkStoreCommit measures one single-row transaction commit on
// a storage element's store: the §2.3 "fast" requirement's inner
// loop (E13's excluding-network query cost).
func BenchmarkStoreCommit(b *testing.B) {
	st := store.New("bench")
	entry := store.Entry{"msisdn": {"34600000001"}, "active": {"TRUE"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := st.Begin(store.ReadCommitted)
		txn.Put(fmt.Sprintf("sub-%d", i%10000), entry)
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStore builds a store pre-loaded with n committed rows and
// returns it with the key set (identity index on, as the SEs run it).
func benchStore(b *testing.B, n int) (*store.Store, []string) {
	b.Helper()
	st := store.New("bench")
	st.SetIndexedAttrs(subscriber.IdentityAttrs...)
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("sub-%d", i)
		txn := st.Begin(store.ReadCommitted)
		txn.Put(keys[i], store.Entry{"v": {"1"}, subscriber.AttrIMSI: {fmt.Sprintf("21401%09d", i)}})
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	return st, keys
}

// BenchmarkStoreRead measures the committed-read path: with immutable
// copy-on-write row versions it returns the shared entry and must not
// allocate.
func BenchmarkStoreRead(b *testing.B) {
	st, keys := benchStore(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := st.GetCommitted(keys[i%len(keys)]); !ok {
			b.Fatal("missing row")
		}
	}
}

// BenchmarkStoreReadParallel measures committed reads fanned across
// GOMAXPROCS goroutines: the lock-striped shard map should scale near
// linearly because readers on different stripes never contend.
func BenchmarkStoreReadParallel(b *testing.B) {
	st, keys := benchStore(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, ok := st.GetCommitted(keys[i%len(keys)]); !ok {
				b.Fatal("missing row")
			}
			i += 13
		}
	})
}

// BenchmarkStoreCommitParallel measures concurrent single-row commits
// from many client goroutines. CSN assignment is serialized by design
// (the §3.2 total order), so this bounds how much of the commit cost
// sits outside the striped row install.
func BenchmarkStoreCommitParallel(b *testing.B) {
	st, keys := benchStore(b, 10000)
	entry := store.Entry{"v": {"2"}}
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := int(worker.Add(1)) * 104729
		i := 0
		for pb.Next() {
			txn := st.Begin(store.ReadCommitted)
			txn.Put(keys[(base+i)%len(keys)], entry)
			if _, err := txn.Commit(); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkStoreMixedParallel measures the contended 90/10 read/write
// mix: the FE-heavy traffic profile of §2.3 where reads must not
// queue behind the commit lock.
func BenchmarkStoreMixedParallel(b *testing.B) {
	st, keys := benchStore(b, 10000)
	entry := store.Entry{"v": {"2"}}
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := int(worker.Add(1)) * 7919
		i := 0
		for pb.Next() {
			k := keys[(base+i)%len(keys)]
			if i%10 == 9 {
				txn := st.Begin(store.ReadCommitted)
				txn.Put(k, entry)
				if _, err := txn.Commit(); err != nil {
					b.Fatal(err)
				}
			} else if _, _, ok := st.GetCommitted(k); !ok {
				b.Fatal("missing row")
			}
			i++
		}
	})
}

// BenchmarkStoreFindIndexed measures the secondary-index identity
// lookup that replaced the §3.4 full scan on the FindReq path.
func BenchmarkStoreFindIndexed(b *testing.B) {
	st, _ := benchStore(b, 10000)
	vals := make([]string, 10000)
	for i := range vals {
		vals[i] = fmt.Sprintf("21401%09d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.LookupByAttr(subscriber.AttrIMSI, vals[i%len(vals)]); !ok {
			b.Fatal("missing identity")
		}
	}
}

// BenchmarkLocatorMapLookup measures the O(log N) identity-location
// map at 100k subscribers (E8's left column).
func BenchmarkLocatorMapLookup(b *testing.B) {
	stage := locator.NewStage("x", locator.Provisioned, true)
	const n = 100000
	ids := make([]subscriber.Identity, n)
	for i := 0; i < n; i++ {
		ids[i] = subscriber.Identity{Type: subscriber.IMSI, Value: fmt.Sprintf("21401%09d", i)}
		stage.PutProfile(ids[i:i+1], locator.Placement{SubscriberID: "s", Partition: "p"})
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stage.Lookup(ctx, ids[i%n]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocatorHashLookup measures the O(1) consistent-hashing
// alternative (E8's right column).
func BenchmarkLocatorHashLookup(b *testing.B) {
	h := locator.NewHashLocator([]string{"p-0", "p-1", "p-2", "p-3"})
	ctx := context.Background()
	ids := make([]subscriber.Identity, 1000)
	for i := range ids {
		ids[i] = subscriber.Identity{Type: subscriber.IMSI, Value: fmt.Sprintf("21401%09d", i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Lookup(ctx, ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBTreeSet measures ordered-index insertion.
func BenchmarkBTreeSet(b *testing.B) {
	m := btree.New[int]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(fmt.Sprintf("key-%09d", i%200000), i)
	}
}

// BenchmarkChashLocate measures raw ring lookup.
func BenchmarkChashLocate(b *testing.B) {
	r := chash.New(128)
	for i := 0; i < 16; i++ {
		r.Add(fmt.Sprintf("p-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Locate(fmt.Sprintf("key-%d", i))
	}
}

// BenchmarkLDAPEncodeDecode measures one LDAP search-request
// round-trip through the BER codec (the northbound wire cost per op
// behind E7's LDAP-server throughput model).
func BenchmarkLDAPEncodeDecode(b *testing.B) {
	msg := &ldap.Message{ID: 1, Op: &ldap.SearchRequest{
		BaseDN: "ou=subscribers,dc=udr",
		Scope:  ldap.ScopeWholeSubtree,
		Filter: ldap.And(ldap.Eq("objectClass", "udrSubscription"), ldap.Eq("msisdn", "34600000001")),
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := msg.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ldap.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchUDR builds a zero-latency three-site UDR for end-to-end path
// benchmarks.
func benchUDR(b *testing.B, subs int, mutate ...func(*core.Config)) (*simnet.Network, *core.UDR, []*subscriber.Profile) {
	b.Helper()
	net := simnet.New(simnet.Config{Seed: 1})
	cfg := core.DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	u, err := core.New(net, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(u.Stop)
	gen := subscriber.NewGenerator(u.Sites()...)
	profiles := make([]*subscriber.Profile, subs)
	for i := range profiles {
		profiles[i] = gen.Profile(i)
		if err := u.SeedDirect(profiles[i]); err != nil {
			b.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := u.WaitReplication(ctx); err != nil {
		b.Fatal(err)
	}
	return net, u, profiles
}

// BenchmarkFEReadPath measures the full FE read path (session → PoA →
// locator → SE) with network latency zeroed, isolating processing
// cost.
func BenchmarkFEReadPath(b *testing.B) {
	net, u, profiles := benchUDR(b, 1000)
	site := u.Sites()[0]
	sess := core.NewSession(net, simnet.MakeAddr(site, "bench-fe"), site, core.PolicyFE)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profiles[i%len(profiles)]
		if _, err := sess.Exec(ctx, core.ExecReq{
			Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
			Ops:      []se.TxnOp{{Kind: se.TxnGet}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFEReadPathParallel runs the full FE read path from many
// concurrent client goroutines against one shared session (sessions
// are safe for concurrent use), the end-to-end view of the striped
// engine's read scaling.
func BenchmarkFEReadPathParallel(b *testing.B) {
	net, u, profiles := benchUDR(b, 1000)
	site := u.Sites()[0]
	sess := core.NewSession(net, simnet.MakeAddr(site, "bench-fe"), site, core.PolicyFE)
	ctx := context.Background()
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := int(worker.Add(1)) * 7919
		i := 0
		for pb.Next() {
			p := profiles[(base+i)%len(profiles)]
			if _, err := sess.Exec(ctx, core.ExecReq{
				Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
				Ops:      []se.TxnOp{{Kind: se.TxnGet}},
			}); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// benchCachedSession builds a cached-FE benchmark fixture: the UDR
// with the PoA subscriber cache on, a session with the in-process
// fast path attached, and the cache warmed with one read-through per
// subscriber so the measured loop starts hot.
func benchCachedSession(b *testing.B, subs int) (*core.Session, []*subscriber.Profile) {
	b.Helper()
	net, u, profiles := benchUDR(b, subs, func(cfg *core.Config) {
		cfg.FECache = true
		cfg.FECacheSlaveLB = true
	})
	site := u.Sites()[0]
	sess := core.NewSession(net, simnet.MakeAddr(site, "bench-fe"), site, core.PolicyFE)
	sess.AttachCache(u.PoA(site).Cache())
	ctx := context.Background()
	for _, p := range profiles {
		if _, err := sess.Exec(ctx, core.ExecReq{
			Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
			Ops:      []se.TxnOp{{Kind: se.TxnGet}},
		}); err != nil {
			b.Fatal(err)
		}
	}
	return sess, profiles
}

// BenchmarkFECachedRead measures the FE read path with the PoA
// subscriber cache enabled and warm: the session fast path resolves
// the identity alias and serves the hit in-process, skipping the
// client→PoA→SE round trip entirely — compare BenchmarkFEReadPath for
// the cache-off cost of the same request stream.
func BenchmarkFECachedRead(b *testing.B) {
	sess, profiles := benchCachedSession(b, 1000)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profiles[i%len(profiles)]
		if _, err := sess.Exec(ctx, core.ExecReq{
			Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
			Ops:      []se.TxnOp{{Kind: se.TxnGet}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFECachedReadParallel fans the cached read path across
// GOMAXPROCS goroutines on one shared session: hits touch only a
// sharded LRU and two atomics, so this should scale like the striped
// store rather than the simulated network.
func BenchmarkFECachedReadParallel(b *testing.B) {
	sess, profiles := benchCachedSession(b, 1000)
	ctx := context.Background()
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := int(worker.Add(1)) * 7919
		i := 0
		for pb.Next() {
			p := profiles[(base+i)%len(profiles)]
			if _, err := sess.Exec(ctx, core.ExecReq{
				Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
				Ops:      []se.TxnOp{{Kind: se.TxnGet}},
			}); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkFEHotKeyMixedCached drives the busy-hour hot-key profile —
// Zipfian s=1.1 subscriber draws, 90/10 read/write — through the
// cached FE path. Writes ride the master path and write through the
// cache, so hot keys stay resident and fresh; the op cost lands
// between the pure cached read and the uncached round trip.
func BenchmarkFEHotKeyMixedCached(b *testing.B) {
	sess, profiles := benchCachedSession(b, 1000)
	ctx := context.Background()
	pick := workload.Zipfian{S: 1.1}.Picker(rand.New(rand.NewSource(1)), len(profiles))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profiles[pick()]
		if i%10 == 9 {
			if _, err := sess.Exec(ctx, core.ExecReq{
				Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
				Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
					Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{"bench"},
				}}}},
			}); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if _, err := sess.Exec(ctx, core.ExecReq{
			Identity: subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
			Ops:      []se.TxnOp{{Kind: se.TxnGet}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPSWritePath measures the provisioning write path
// (master-routed modify) with network latency zeroed.
func BenchmarkPSWritePath(b *testing.B) {
	net, u, profiles := benchUDR(b, 1000)
	site := u.Sites()[0]
	sess := core.NewSession(net, simnet.MakeAddr(site, "bench-ps"), site, core.PolicyPS)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profiles[i%len(profiles)]
		if _, err := sess.Exec(ctx, core.ExecReq{
			Identity: subscriber.Identity{Type: subscriber.IMSI, Value: p.IMSIVal},
			Ops: []se.TxnOp{{Kind: se.TxnModify, Mods: []store.Mod{{
				Kind: store.ModReplace, Attr: subscriber.AttrArea, Vals: []string{"bench"},
			}}}},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerkleTreeUpdate measures the per-row cost the anti-
// entropy tracker adds to every installed row version (the O(1)
// incremental tree update).
func BenchmarkMerkleTreeUpdate(b *testing.B) {
	tree := antientropy.NewTree(antientropy.DefaultFanout, antientropy.DefaultDepth)
	entry := store.Entry{"msisdn": {"34600000001"}, "active": {"TRUE"}}
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = fmt.Sprintf("sub-%08d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := keys[i%len(keys)]
		tree.Update(key, antientropy.RowDigest(key, entry, store.Meta{CSN: uint64(i), WallTS: int64(i)}))
	}
}

// BenchmarkAntiEntropyRepair measures a full repair round (digest
// walk + leaf diff + row exchange) at increasing divergence
// fractions of a 2000-row partition, the cost curve that justifies
// Merkle sync over full re-replication: at low divergence the round
// is dominated by the O(leaves) digest walk, not the row count.
// BenchmarkMigratePartition measures the live-migration cost curve:
// one full move (bulk copy + catch-up + cutover) per iteration, rows
// vs wall time, with the client-visible freeze window reported as its
// own metric. The partition bounces between two elements of one site,
// so each iteration migrates the same row population back.
func BenchmarkMigratePartition(b *testing.B) {
	for _, rows := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			network := simnet.New(simnet.FastConfig())
			cfg := core.DefaultConfig()
			cfg.Sites = []core.SiteSpec{{Name: "eu", SEs: 2, PartitionsPerSE: 1}}
			cfg.ReplicationFactor = 1
			u, err := core.New(network, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(u.Stop)
			partID := u.Partitions()[0]
			part, _ := u.Partition(partID)
			st := u.Element(part.Master().Element).Replica(partID).Store
			for i := 0; i < rows; i++ {
				txn := st.Begin(store.ReadCommitted)
				txn.Put(fmt.Sprintf("sub-%08d", i), store.Entry{"v": {fmt.Sprint(i)}, "imsi": {fmt.Sprint(1e9 + i)}})
				if _, err := txn.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			targets := [2]string{"se-eu-0", "se-eu-1"}
			ctx := context.Background()
			var freezeNS float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur, _ := u.Partition(partID)
				target := targets[0]
				if cur.Master().Element == target {
					target = targets[1]
				}
				rep, err := u.MigratePartition(ctx, partID, target, true)
				if err != nil {
					b.Fatal(err)
				}
				if rep.RowsCopied != rows {
					b.Fatalf("copied %d rows, want %d", rep.RowsCopied, rows)
				}
				freezeNS += float64(rep.FreezeDuration.Nanoseconds())
			}
			b.ReportMetric(float64(rows)*float64(b.N)*1e9/float64(b.Elapsed().Nanoseconds()), "rows/s")
			b.ReportMetric(freezeNS/float64(b.N), "freeze-ns/op")
		})
	}
}

func BenchmarkAntiEntropyRepair(b *testing.B) {
	const rows = 2000
	for _, pct := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("divergence=%d%%", pct), func(b *testing.B) {
			network := simnet.New(simnet.Config{Seed: 1})
			masterAddr := simnet.MakeAddr("eu", "m")
			slaveAddr := simnet.MakeAddr("us", "s")
			mkReplica := func(addr simnet.Addr, id string, role store.Role) (*replication.Replica, *antientropy.Tracker) {
				node := replication.NewNode(network, addr)
				st := store.New(id)
				st.SetRole(role)
				rep := node.AddReplica("p1", st)
				tr := antientropy.NewTracker(st)
				peer := antientropy.NewPeer()
				peer.Register("p1", tr, rep)
				network.Register(addr, func(ctx context.Context, from simnet.Addr, msg any) (any, error) {
					if resp, handled, err := node.HandleMessage(ctx, from, msg); handled {
						return resp, err
					}
					resp, _, err := peer.HandleMessage(ctx, from, msg)
					return resp, err
				})
				b.Cleanup(node.Stop)
				return rep, tr
			}
			masterRep, mTracker := mkReplica(masterAddr, "m", store.Master)
			slaveRep, _ := mkReplica(slaveAddr, "s", store.Slave)
			_ = slaveRep

			for i := 0; i < rows; i++ {
				txn := masterRep.Store().Begin(store.ReadCommitted)
				txn.Put(fmt.Sprintf("sub-%08d", i), store.Entry{"v": {fmt.Sprint(i)}})
				if _, err := txn.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			// Seed the slave identical, out of band.
			slaveStore := slaveRep.Store()
			masterRep.Store().ForEach(func(key string, e store.Entry, m store.Meta) bool {
				slaveStore.PutDirect(key, e, m)
				return true
			})
			slaveStore.SetAppliedCSN(1 << 40) // keep the stream out of the picture

			repairer := antientropy.NewRepairer(network, masterAddr, "p1", mTracker, masterRep)
			ctx := context.Background()
			divergent := rows * pct / 100
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for d := 0; d < divergent; d++ {
					key := fmt.Sprintf("sub-%08d", d)
					slaveStore.PutDirect(key, store.Entry{"v": {"stale"}}, store.Meta{CSN: 1, WallTS: 1})
				}
				b.StartTimer()
				stats, err := repairer.RepairPeer(ctx, slaveAddr)
				if err != nil {
					b.Fatal(err)
				}
				if stats.RowsShipped != divergent {
					b.Fatalf("shipped %d rows, want %d", stats.RowsShipped, divergent)
				}
			}
			b.ReportMetric(float64(divergent), "rows-repaired/op")
		})
	}
}

// BenchmarkWALAppendSync measures one serial durable WAL append:
// encode + write + fsync, the paper's footnote-6 "dump transactions
// to disk before committing" floor that group commit amortizes.
func BenchmarkWALAppendSync(b *testing.B) {
	l, err := wal.Open(b.TempDir(), wal.SyncEveryCommit)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := &store.CommitRecord{Origin: "bench", Ops: []store.Op{{
		Kind: store.OpPut, Key: "sub-42",
		Entry: store.Entry{"msisdn": {"34600000001"}, "active": {"TRUE"}},
	}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.CSN = uint64(i + 1)
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Scale benchmarks (bench-json's SCALE_BENCH pass) ---------------
//
// These run once (-benchtime=1x) in the archived perf snapshot: a
// 2000x pass over 100k-row populations would take minutes, and the
// numbers of interest (image rows/s, recovery rows/s, resident
// bytes/subscriber) are throughput and footprint figures, not
// per-op latencies that need iteration averaging.

// benchScaleSubs is the population the scale benchmarks provision —
// large enough that checkpoint/recovery cost is dominated by rows,
// small enough for the smoke-bench CI budget.
const benchScaleSubs = 100_000

// provisionScale fills st with benchScaleSubs subscriber rows in
// batched transactions (the E24 row shape).
func provisionScale(b *testing.B, st *store.Store) {
	b.Helper()
	const batch = 1000
	for i := 0; i < benchScaleSubs; i += batch {
		txn := st.Begin(store.ReadCommitted)
		for j := i; j < i+batch; j++ {
			txn.Put(fmt.Sprintf("imsi-%09d", j), store.Entry{
				"objectClass": {"subscriber"},
				"imsi":        {fmt.Sprintf("24001%09d", j)},
				"msisdn":      {fmt.Sprintf("4670%08d", j)},
				"cell":        {fmt.Sprintf("cell-%04d", j%4096)},
			})
		}
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALCheckpoint measures one incremental checkpoint of a
// 100k-row element: image streaming + segment rotation + prune.
func BenchmarkWALCheckpoint(b *testing.B) {
	l, err := wal.Open(b.TempDir(), wal.Periodic)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	st := store.New("bench")
	st.SetCommitHook(l.Append)
	provisionScale(b, st)
	if err := l.Sync(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Checkpoint(st); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cs := l.CheckpointStats()
	b.ReportMetric(float64(cs.LastBytes), "image-bytes")
	b.ReportMetric(float64(benchScaleSubs)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkWALRecover measures crash-restart of a checkpointed
// 100k-row element: image verify + load plus suffix-only replay.
func BenchmarkWALRecover(b *testing.B) {
	const suffix = 500
	dir := b.TempDir()
	l, err := wal.Open(dir, wal.Periodic)
	if err != nil {
		b.Fatal(err)
	}
	st := store.New("bench")
	st.SetCommitHook(l.Append)
	provisionScale(b, st)
	if err := l.Checkpoint(st); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < suffix; i++ {
		txn := st.Begin(store.ReadCommitted)
		txn.Modify(fmt.Sprintf("imsi-%09d", i), store.Mod{
			Kind: store.ModReplace, Attr: "cell", Vals: []string{"cell-moved"},
		})
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		b.Fatal(err)
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rst wal.RecoverStats
	for i := 0; i < b.N; i++ {
		rec := store.New("bench")
		rst, err = wal.RecoverWithStats(dir, rec)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Len() != benchScaleSubs || rst.Replayed != suffix {
			b.Fatalf("len=%d replayed=%d", rec.Len(), rst.Replayed)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rst.Replayed), "replayed")
	b.ReportMetric(float64(benchScaleSubs)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkStoreResident measures the resident heap cost per
// subscriber row under the interned, compact entry layout.
func BenchmarkStoreResident(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		st := store.New("bench")
		provisionScale(b, st)
		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		b.ReportMetric(float64(int64(m1.HeapInuse)-int64(m0.HeapInuse))/benchScaleSubs, "bytes/subscriber")
		runtime.KeepAlive(st)
	}
}

// benchGoroutines is the fixed committer count the durable-parallel
// benchmarks run (machine-independent, unlike b.SetParallelism, which
// multiplies by GOMAXPROCS): the "at 8 goroutines" of the per-PR
// acceptance numbers.
const benchGoroutines = 8

// runExactly splits b.N across exactly `gors` goroutines running fn.
func runExactly(b *testing.B, gors int, fn func(worker int, iter int64)) {
	b.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < gors; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkWALGroupCommitParallel measures durable appends from
// exactly 8 concurrent goroutines with and without fsync coalescing:
// the group=off column is the seed's one-fsync-per-append behavior,
// the group=on column shares one cohort fsync across concurrent
// appenders (the PR-3 acceptance ratio).
func BenchmarkWALGroupCommitParallel(b *testing.B) {
	for _, group := range []bool{true, false} {
		name := "group=on"
		if !group {
			name = "group=off"
		}
		b.Run(name, func(b *testing.B) {
			l, err := wal.Open(b.TempDir(), wal.SyncEveryCommit)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			l.SetGroupCommit(group)
			recs := make([]*store.CommitRecord, benchGoroutines)
			for i := range recs {
				recs[i] = &store.CommitRecord{Origin: "bench", Ops: []store.Op{{
					Kind: store.OpPut, Key: "sub-42",
					Entry: store.Entry{"msisdn": {"34600000001"}, "active": {"TRUE"}},
				}}}
			}
			b.ReportAllocs()
			b.ResetTimer()
			runExactly(b, benchGoroutines, func(worker int, iter int64) {
				rec := recs[worker]
				rec.CSN = uint64(iter)
				if err := l.Append(rec); err != nil {
					b.Error(err)
				}
			})
			if s := l.Syncs(); s > 0 {
				b.ReportMetric(float64(l.Appends())/float64(s), "appends/fsync")
			}
		})
	}
}

// BenchmarkCommitDurableParallel measures the full durable commit
// path — transaction install + WAL stage under the commit lock,
// group-commit fsync wait outside it — from exactly 8 concurrent
// client goroutines, the end-to-end view of what E18 reports.
func BenchmarkCommitDurableParallel(b *testing.B) {
	for _, group := range []bool{true, false} {
		name := "group=on"
		if !group {
			name = "group=off"
		}
		b.Run(name, func(b *testing.B) {
			st := store.New("bench")
			l, err := wal.Open(b.TempDir(), wal.SyncEveryCommit)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			l.SetGroupCommit(group)
			st.SetCommitPipeline(func(rec *store.CommitRecord) (func() error, error) {
				ticket, needSync, err := l.AppendStage(rec)
				if err != nil {
					return nil, err
				}
				if !needSync {
					return nil, nil
				}
				return func() error { return l.WaitDurable(ticket) }, nil
			})
			entry := store.Entry{"msisdn": {"34600000001"}, "active": {"TRUE"}}
			b.ReportAllocs()
			b.ResetTimer()
			runExactly(b, benchGoroutines, func(worker int, iter int64) {
				txn := st.Begin(store.ReadCommitted)
				txn.Put(fmt.Sprintf("sub-%d", (worker*104729+int(iter))%10000), entry)
				if _, err := txn.Commit(); err != nil {
					b.Error(err)
				}
			})
		})
	}
}

// benchCommitWAN measures the durable commit path over a WAN
// topology: master in eu, one near slave (metro profile) and one far
// slave (continental profile). Under Quorum durability the commit
// returns at the near replica's RTT; under SyncAll it pays the far
// one's — the E23 headline at benchmark granularity. The replica RTTs
// are reported alongside ns/op so the snapshot carries its own
// baseline.
func benchCommitWAN(b *testing.B, d replication.Durability) {
	net := simnet.New(simnet.FastConfig())
	for _, s := range []string{"eu", "us", "apac"} {
		net.AddSite(s)
	}
	if err := net.ApplyWAN(simnet.WANSpec{
		Default:   simnet.Metro,
		Overrides: []simnet.WANPair{{A: "eu", B: "apac", Profile: simnet.Continental}},
	}); err != nil {
		b.Fatal(err)
	}
	newNode := func(site, name string) *replication.Node {
		addr := simnet.MakeAddr(site, name)
		node := replication.NewNode(net, addr)
		net.Register(addr, func(ctx context.Context, from simnet.Addr, msg any) (any, error) {
			resp, handled, err := node.HandleMessage(ctx, from, msg)
			if !handled {
				return nil, fmt.Errorf("unhandled %T", msg)
			}
			return resp, err
		})
		return node
	}
	master := newNode("eu", "m")
	defer master.Stop()
	rep := master.AddReplica("p1", store.New("m"))
	var peers []simnet.Addr
	for _, site := range []string{"us", "apac"} {
		node := newNode(site, "s-"+site)
		defer node.Stop()
		ss := store.New("s-" + site)
		ss.SetRole(store.Slave)
		node.AddReplica("p1", ss)
		peers = append(peers, node.Addr())
	}
	rep.SetPeers(peers...)
	rep.SetDurability(d)

	entry := store.Entry{"msisdn": {"34600000001"}, "active": {"TRUE"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := rep.Store().Begin(store.ReadCommitted)
		txn.Put(fmt.Sprintf("sub-%d", i%10000), entry)
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rtts := net.ReplicaRTTs("eu", "us", "apac")
	b.ReportMetric(float64(rtts[0].Microseconds()), "min-rtt-us")
	b.ReportMetric(float64(rtts[len(rtts)-1].Microseconds()), "max-rtt-us")
}

func BenchmarkCommitQuorum(b *testing.B)  { benchCommitWAN(b, replication.Quorum) }
func BenchmarkCommitSyncAll(b *testing.B) { benchCommitWAN(b, replication.SyncAll) }

// benchTracedCommit measures the end-to-end durable write path
// (session → PoA → SE → store install + WAL fsync) with or without
// the span recorder wired through every layer. At the default 1/64
// head-sampling rate the unsampled fast path is two clock reads plus
// one atomic load per hook, so Traced must stay within a few percent
// of Untraced — the tracing overhead budget.
func benchTracedCommit(b *testing.B, tracer *trace.Recorder) {
	net, u, profiles := benchUDR(b, 1000, func(cfg *core.Config) {
		cfg.WALDir = b.TempDir()
		cfg.WALMode = wal.SyncEveryCommit
		cfg.Trace = tracer
	})
	_ = u
	site := u.Sites()[0]
	sess := core.NewSession(net, simnet.MakeAddr(site, "bench-fe"), site, core.PolicyFE)
	if tracer != nil {
		sess.AttachTracer(tracer)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profiles[i%len(profiles)]
		if _, err := sess.Modify(ctx,
			subscriber.Identity{Type: subscriber.MSISDN, Value: p.MSISDNVal},
			store.Mod{Kind: store.ModReplace, Attr: subscriber.AttrServingNode, Vals: []string{"mme-b"}},
		); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTracedCommit(b *testing.B)   { benchTracedCommit(b, trace.New(trace.Config{})) }
func BenchmarkUntracedCommit(b *testing.B) { benchTracedCommit(b, nil) }

// BenchmarkReplicationApply measures slave-side ordered apply.
func BenchmarkReplicationApply(b *testing.B) {
	master := store.New("m")
	slave := store.New("s")
	slave.SetRole(store.Slave)
	recs := make([]*store.CommitRecord, b.N)
	for i := 0; i < b.N; i++ {
		txn := master.Begin(store.ReadCommitted)
		txn.Put(fmt.Sprintf("k-%d", i%10000), store.Entry{"v": {"1"}})
		rec, err := txn.Commit()
		if err != nil {
			b.Fatal(err)
		}
		recs[i] = rec
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := slave.ApplyReplicated(recs[i]); err != nil {
			b.Fatal(err)
		}
	}
}
