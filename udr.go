// Package udr is the public API of this reproduction of "CAP Limits
// in Telecom Subscriber Database Design" (Arauz, VLDB 2014): a
// geo-distributed, RAM-resident, partitioned telecom subscriber
// database — the 3GPP UDC architecture's User Data Repository —
// with the paper's CAP/PACELC policy knobs exposed.
//
// # Quick start
//
//	net := udr.NewNetwork(udr.DefaultNetConfig())
//	u, err := udr.New(net, udr.DefaultConfig()) // 3-site Figure 2 layout
//	defer u.Stop()
//
//	ps := udr.NewSession(net, "eu-south/ps", "eu-south", udr.PolicyPS)
//	ps.Provision(ctx, profile)            // provisioning transaction
//
//	fe := udr.NewSession(net, "americas/fe", "americas", udr.PolicyFE)
//	fe.ReadProfile(ctx, udr.MSISDN("34600000001")) // slave reads OK
//
// The package re-exports the building blocks from internal packages:
// the simulated multi-national IP network (simnet), the UDR core, the
// subscriber data model, the HLR/HSS front-ends, the provisioning
// system, and the experiment harness that regenerates the paper's
// figures (see EXPERIMENTS.md).
package udr

import (
	"context"

	"repro/internal/antientropy"
	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fe"
	"repro/internal/ldap"
	"repro/internal/locator"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/rebalance"
	"repro/internal/replication"
	"repro/internal/se"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/subscriber"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Core types.
type (
	// UDR is one User Data Repository network function.
	UDR = core.UDR
	// Config configures a UDR (sites, replication factor,
	// durability, locator mode, multi-master, WAL).
	Config = core.Config
	// SiteSpec sizes one deployment site.
	SiteSpec = core.SiteSpec
	// Session is a client handle bound to a PoA and a policy class.
	Session = core.Session
	// Policy is the client class (FE or PS) selecting the paper's
	// per-class routing rules.
	Policy = core.Policy
	// ExecReq / ExecResp are the one-shot transaction envelope.
	ExecReq  = core.ExecReq
	ExecResp = core.ExecResp
	// Partition is one partition-table entry.
	Partition = core.Partition
	// AccessPoint is a site's PoA.
	AccessPoint = core.AccessPoint
	// Supervisor is the OSS failover watchdog.
	Supervisor = core.Supervisor
	// LDAPBackend adapts a Session to the LDAP server interface.
	LDAPBackend = core.LDAPBackend
)

// Network simulation types.
type (
	// Network is the simulated multi-national IP network.
	Network = simnet.Network
	// NetConfig holds the network's default link parameters.
	NetConfig = simnet.Config
	// Link describes latency/jitter/loss of one link.
	Link = simnet.Link
	// Addr identifies a network endpoint ("site/process").
	Addr = simnet.Addr
)

// Subscriber data model types.
type (
	// Profile is a full subscriber record.
	Profile = subscriber.Profile
	// Identity is one (type, value) subscriber identity.
	Identity = subscriber.Identity
	// Services is the per-subscription service profile.
	Services = subscriber.Services
	// Generator produces synthetic subscriber profiles.
	Generator = subscriber.Generator
)

// Entry and storage types.
type (
	// Entry is an LDAP-style attribute map (the stored row value).
	Entry = store.Entry
	// Mod is one attribute modification.
	Mod = store.Mod
	// Meta is per-row metadata (CSN, version vector, tombstone).
	Meta = store.Meta
	// TxnOp is one operation inside a one-shot transaction.
	TxnOp = se.TxnOp
)

// Transaction operation kinds.
const (
	TxnGet     = se.TxnGet
	TxnPut     = se.TxnPut
	TxnModify  = se.TxnModify
	TxnDelete  = se.TxnDelete
	TxnCompare = se.TxnCompare
)

// Attribute modification kinds.
const (
	ModAdd     = store.ModAdd
	ModReplace = store.ModReplace
	ModDelete  = store.ModDelete
)

// Client-side subsystems.
type (
	// FE is an application front-end (HLR-FE / HSS-FE).
	FE = fe.FE
	// PS is a provisioning system instance.
	PS = ps.PS
	// BatchResult reports a provisioning batch.
	BatchResult = ps.BatchResult
	// AuthVector is the authentication vector an FE derives for a
	// serving node during the authentication procedure.
	AuthVector = auth.Vector
)

// Experiment harness types.
type (
	// Report is an experiment result.
	Report = experiments.Report
	// ExperimentOptions tunes an experiment run.
	ExperimentOptions = experiments.Options
)

// Anti-entropy repair types (E16). Enable with Config.AntiEntropy;
// trigger rounds with UDR.RepairPartition / UDR.RepairAll or udrctl
// repair — heal detection and the periodic scheduler run them
// automatically.
type (
	// RepairStats reports one anti-entropy repair round against one
	// replication peer.
	RepairStats = antientropy.Stats
	// MerkleTree is the incrementally updated hash tree each replica
	// maintains over its rows.
	MerkleTree = antientropy.Tree
)

// Live partition migration and elastic rebalancing (internal/
// rebalance). Move a partition master with UDR.MigratePartition or
// udrctl move; rebalance the whole cluster with UDR.Rebalance,
// udrctl rebalance, or automatically on scale-out via
// Config.RebalanceOnAddSite.
type (
	// MoveReport describes one migration's outcome and cost (rows
	// shipped, catch-up records, the bounded write-freeze window).
	MoveReport = rebalance.Report
	// MoveSpec is one planned rebalancing move.
	MoveSpec = rebalance.MoveSpec
	// ElementLoad is one storage element's load snapshot, the
	// rebalancing planner's input.
	ElementLoad = rebalance.ElementLoad
	// RebalanceResult is one rebalancing pass: plan + per-move
	// outcomes.
	RebalanceResult = core.RebalanceResult
)

// Observability (internal/metrics registry + internal/obs HTTP
// surface). Register a UDR's instruments with UDR.RegisterMetrics,
// then serve them: obs.NewServer exposes GET /metrics (Prometheus
// text exposition), /healthz, /status and the POST /admin/* mirrors
// of the udrctl extended operations. udrd wires this up behind its
// -admin flag.
type (
	// MetricsRegistry names, labels and gathers instruments.
	MetricsRegistry = metrics.Registry
	// ObsServer is the admin/metrics HTTP surface over a UDR.
	ObsServer = obs.Server
	// ObsConfig configures an ObsServer.
	ObsConfig = obs.Config
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewObsServer builds the admin/metrics HTTP surface. Serve it with
// (*ObsServer).Serve on a listener, or mount (*ObsServer).Handler.
func NewObsServer(cfg ObsConfig) *ObsServer { return obs.NewServer(cfg) }

// Request tracing. Wire a Tracer into Config.Trace (and attach it to
// sessions and front-ends) to get per-request latency attribution
// across the FE → PoA → SE → WAL/replication path; serve the sampled
// traces via ObsConfig.Tracer or udrctl trace.
type (
	// Tracer records sampled request traces in lock-striped rings.
	Tracer = trace.Recorder
	// TraceConfig sets sampling rates and buffer capacity.
	TraceConfig = trace.Config
	// TraceSpan is one recorded hop of a trace.
	TraceSpan = trace.Span
	// TraceID identifies one stitched request trace.
	TraceID = trace.ID
)

// NewTracer creates a trace recorder. The zero TraceConfig samples
// 1/64 of requests plus everything slower than 25ms.
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// RenderTrace formats one trace's spans as an indented tree with
// per-hop durations.
func RenderTrace(spans []TraceSpan) string { return trace.RenderTree(spans) }

// Policy classes.
const (
	// PolicyFE marks application front-end traffic: slave reads
	// allowed (PA/EL).
	PolicyFE = core.PolicyFE
	// PolicyPS marks provisioning traffic: master-copy access only
	// (PC/EC).
	PolicyPS = core.PolicyPS
)

// Durability levels (§3.3.1 and §5).
const (
	// DurabilityAsync commits after the local apply (the paper's
	// default).
	DurabilityAsync = replication.Async
	// DurabilityDualSeq commits after master + first slave (§5's
	// dual-in-sequence).
	DurabilityDualSeq = replication.DualSeq
	// DurabilitySyncAll waits for every slave.
	DurabilitySyncAll = replication.SyncAll
	// DurabilityQuorum commits once a configurable quorum of
	// replicas acked (Config.QuorumPolicy shapes it).
	DurabilityQuorum = replication.Quorum
)

// Locator modes (§3.5).
const (
	// LocatorProvisioned maps are written by provisioning and copied
	// on scale-out.
	LocatorProvisioned = locator.Provisioned
	// LocatorCached maps fill on demand with SE fan-out on miss.
	LocatorCached = locator.Cached
)

// WAL durability modes (§3.1).
const (
	// WALPeriodic buffers and syncs on an interval.
	WALPeriodic = wal.Periodic
	// WALSyncEveryCommit fsyncs before every commit returns.
	WALSyncEveryCommit = wal.SyncEveryCommit
)

// Errors re-exported for callers that branch on failure classes.
var (
	// ErrMasterUnreachable is the C-over-A write failure on a
	// partition.
	ErrMasterUnreachable = core.ErrMasterUnreachable
	// ErrNoReplica reports a read that reached no replica.
	ErrNoReplica = core.ErrNoReplica
	// ErrUnknownSubscriber reports a failed identity resolution.
	ErrUnknownSubscriber = core.ErrUnknownSubscriber
	// ErrIdentityNotFound reports an identity absent from the
	// location maps.
	ErrIdentityNotFound = locator.ErrNotFound
	// ErrStoreFull reports a storage element at capacity.
	ErrStoreFull = store.ErrStoreFull
	// ErrMigrationAborted wraps any migration phase failure: the move
	// rolled back and the source is still authoritative.
	ErrMigrationAborted = rebalance.ErrAborted
	// ErrMigrationInFlight reports a second move of a partition whose
	// migration has not finished.
	ErrMigrationInFlight = core.ErrMigrationInFlight
)

// New builds a UDR NF on the given network.
func New(net *Network, cfg Config) (*UDR, error) { return core.New(net, cfg) }

// NewNetwork creates a simulated network.
func NewNetwork(cfg NetConfig) *Network { return simnet.New(cfg) }

// DefaultConfig returns the paper's three-site Figure 2 layout.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultNetConfig returns 10x-compressed telecom network link
// parameters (sub-millisecond LAN, low-millisecond backbone).
func DefaultNetConfig() NetConfig { return simnet.DefaultConfig() }

// FastNetConfig returns near-zero latencies for tests.
func FastNetConfig() NetConfig { return simnet.FastConfig() }

// NewSession opens a client session from the given address to the PoA
// at poaSite under the given policy class.
func NewSession(net *Network, from Addr, poaSite string, policy Policy) *Session {
	return core.NewSession(net, from, poaSite, policy)
}

// NewHLRFE creates an HLR front-end at a site.
func NewHLRFE(net *Network, site, name string) *FE { return fe.New(net, fe.HLR, site, name) }

// NewHSSFE creates an HSS front-end at a site.
func NewHSSFE(net *Network, site, name string) *FE { return fe.New(net, fe.HSS, site, name) }

// NewPS creates a provisioning system instance at a site.
func NewPS(net *Network, site, name string) *PS { return ps.New(net, site, name) }

// NewGenerator returns a synthetic subscriber generator over regions.
func NewGenerator(regions ...string) *Generator { return subscriber.NewGenerator(regions...) }

// NewLDAPServer builds an LDAP server over a session, serving the
// UDC-mandated northbound interface.
func NewLDAPServer(session *Session) *ldap.Server {
	return ldap.NewServer(core.NewLDAPBackend(session))
}

// NewLDAPBackendWithTopology builds an LDAP backend that additionally
// serves the OaM status extended operation (udrctl status).
func NewLDAPBackendWithTopology(session *Session, u *UDR) *LDAPBackend {
	return core.NewLDAPBackend(session).WithTopology(u)
}

// IMSI, MSISDN, IMPU, IMPI and UID build typed identities.
func IMSI(v string) Identity   { return Identity{Type: subscriber.IMSI, Value: v} }
func MSISDN(v string) Identity { return Identity{Type: subscriber.MSISDN, Value: v} }
func IMPU(v string) Identity   { return Identity{Type: subscriber.IMPU, Value: v} }
func IMPI(v string) Identity   { return Identity{Type: subscriber.IMPI, Value: v} }
func UID(v string) Identity    { return Identity{Type: subscriber.UID, Value: v} }

// DN returns the LDAP distinguished name for a subscription ID.
func DN(id string) string { return subscriber.DN(id) }

// RunExperiment executes one of the paper-reproduction experiments
// (E1–E19; see EXPERIMENTS.md for the index).
func RunExperiment(ctx context.Context, id string, opts ExperimentOptions) (*Report, error) {
	return experiments.Run(ctx, id, opts)
}

// ExperimentIDs lists the available experiments in order.
func ExperimentIDs() []string { return experiments.IDs() }

// DescribeExperiment returns an experiment's title and paper source.
func DescribeExperiment(id string) (title, source string, ok bool) {
	return experiments.Describe(id)
}
