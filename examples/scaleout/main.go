// Scaleout: §3.4.2 live. A new site joins a running UDR; its location
// stage must copy every identity-location map entry from a peer
// before its PoA can serve — the availability dip the paper trades
// for fast local lookups — and afterwards serves pre-existing
// subscribers like any other site.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	udr "repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	network := udr.NewNetwork(udr.DefaultNetConfig())
	u, err := udr.New(network, udr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer u.Stop()

	// A provisioned base the new site will have to learn about.
	const subs = 3000
	gen := udr.NewGenerator(u.Sites()...)
	var sample *udr.Profile
	for i := 0; i < subs; i++ {
		p := gen.Profile(i)
		if err := u.SeedDirect(p); err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			sample = p
		}
	}
	fmt.Printf("running UDR: %d sites, %d subscribers provisioned\n", len(u.Sites()), subs)

	// The paper's §3.4.2 observation, demonstrated before the join:
	// an unsynced provisioned stage cannot serve.
	fmt.Println("\n*** scale-out: adding site 'apac' ***")
	start := time.Now()
	syncTime, entries, err := u.AddSite(ctx, udr.SiteSpec{Name: "apac", SEs: 1, PartitionsPerSE: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joined in %v; location stage synced %d identity mappings in %v\n",
		time.Since(start).Round(time.Millisecond), entries, syncTime.Round(time.Millisecond))
	fmt.Println("(during that sync window, operations on the new PoA cannot be handled — §3.4.2)")

	// The new PoA now serves subscribers it never provisioned.
	fe := udr.NewSession(network, "apac/fe", "apac", udr.PolicyFE)
	got, _, role, err := fe.ReadProfile(ctx, udr.MSISDN(sample.MSISDNVal))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread via the new PoA: %s (home %s) served by a %s copy\n", got.ID, got.HomeRegion, role)

	// New subscriptions can be pinned to the new region (selective
	// placement).
	ps := udr.NewSession(network, "apac/ps", "apac", udr.PolicyPS)
	newcomer := gen.Profile(subs + 1)
	newcomer.HomeRegion = "apac"
	resp, err := ps.Provision(ctx, newcomer)
	if err != nil {
		log.Fatal(err)
	}
	part, _ := u.Partition(resp.Partition)
	fmt.Printf("provisioned %s into the new region: partition %s (home site %s)\n",
		newcomer.ID, resp.Partition, part.HomeSite)

	// Contrast: the cached-locator alternative (§3.5) would have no
	// sync window but pay SE fan-out per cache miss — run the E9
	// experiment for the measured comparison:
	fmt.Println("\ncompare with the cached-map alternative: go run ./cmd/udrbench -run E9")

	if _, _, _, err := fe.ReadProfile(ctx, udr.MSISDN("nonexistent")); err == nil {
		log.Fatal("ghost subscriber")
	} else if !errors.Is(err, udr.ErrIdentityNotFound) && !errors.Is(err, udr.ErrUnknownSubscriber) {
		log.Fatalf("unexpected error class: %v", err)
	}
}
