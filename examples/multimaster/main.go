// Multimaster: the paper's §5 evolution, live. In multi-master mode
// both sides of a partition keep accepting provisioning writes
// (availability restored); their views diverge; after the partition
// heals, the consistency-restoration process merges them back into
// one view, resolving conflicts field by field — barring flags merge
// safety-biased, the rest follows last-writer-wins.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	udr "repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	network := udr.NewNetwork(udr.DefaultNetConfig())
	cfg := udr.DefaultConfig()
	cfg.MultiMaster = true // §5: writes accepted at every replica
	u, err := udr.New(network, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer u.Stop()

	gen := udr.NewGenerator(u.Sites()...)
	victim := gen.Profile(0)
	victim.HomeRegion = u.Sites()[1] // mastered away from site 0
	if err := u.SeedDirect(victim); err != nil {
		log.Fatal(err)
	}
	if err := u.WaitReplication(ctx); err != nil {
		log.Fatal(err)
	}

	siteA := u.Sites()[0]
	siteB := victim.HomeRegion
	fmt.Printf("subscriber %s homed at %s; partitioning %s away\n\n", victim.ID, siteB, siteA)
	network.Partition([]string{siteA})

	// Side A (isolated): the shop bars premium calls — §3.2's
	// pay-call barring example.
	psA := udr.NewSession(network, udr.Addr(siteA+"/ps"), siteA, udr.PolicyPS)
	if _, err := psA.Exec(ctx, udr.ExecReq{
		Identity: udr.IMSI(victim.IMSIVal),
		Ops: []udr.TxnOp{{Kind: udr.TxnModify, Mods: []udr.Mod{
			{Kind: udr.ModReplace, Attr: "barPremium", Vals: []string{"TRUE"}},
		}}},
	}); err != nil {
		log.Fatal("side A write: ", err)
	}
	fmt.Printf("side A (%s, isolated): barPremium=TRUE accepted\n", siteA)

	time.Sleep(5 * time.Millisecond)

	// Side B (majority): customer care sets call forwarding.
	psB := udr.NewSession(network, udr.Addr(siteB+"/ps"), siteB, udr.PolicyPS)
	if _, err := psB.Exec(ctx, udr.ExecReq{
		Identity: udr.IMSI(victim.IMSIVal),
		Ops: []udr.TxnOp{{Kind: udr.TxnModify, Mods: []udr.Mod{
			{Kind: udr.ModReplace, Attr: "cfu", Vals: []string{"34699999999"}},
		}}},
	}); err != nil {
		log.Fatal("side B write: ", err)
	}
	fmt.Printf("side B (%s, majority): cfu=34699999999 accepted\n", siteB)
	fmt.Println("\nboth writes succeeded during the partition — the availability the")
	fmt.Println("paper's service providers demand (§4.1) — at the price of divergence.")

	network.Heal()
	fmt.Println("\n*** partition healed; running consistency restoration (§5) ***")
	merged, err := u.RestoreAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anti-entropy transferred %d rows (queued propagation may already have merged the rest)\n\n", merged)

	// Every replica now shows one consistent view holding BOTH
	// writes: barring survived (safety bias), forwarding survived
	// (newer field write).
	fe := udr.NewSession(network, udr.Addr(siteA+"/fe"), siteA, udr.PolicyFE)
	got, _, _, err := fe.ReadProfile(ctx, udr.IMSI(victim.IMSIVal))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged view: barPremium=%v cfu=%q\n",
		got.Services.BarPremium, got.Services.ForwardUnconditional)
	if !got.Services.BarPremium || got.Services.ForwardUnconditional == "" {
		log.Fatal("merge lost a write!")
	}
	fmt.Println("\nthe kids still can't dial the hi-toll number (§3.2), and the")
	fmt.Println("forwarding order survived: one single, consistent view.")
}
