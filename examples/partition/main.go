// Partition: the paper's central trade-off, live. A backbone
// partition isolates one site; front-end reads keep working
// everywhere (slave copies), while provisioning writes fail on the
// side that cannot reach the partition master — consistency over
// availability (§3.2, §4.1).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	udr "repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	network := udr.NewNetwork(udr.DefaultNetConfig())
	u, err := udr.New(network, udr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer u.Stop()

	// Seed one subscriber per region.
	gen := udr.NewGenerator(u.Sites()...)
	var profiles []*udr.Profile
	for i := 0; i < 3; i++ {
		p := gen.Profile(i)
		if err := u.SeedDirect(p); err != nil {
			log.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	if err := u.WaitReplication(ctx); err != nil {
		log.Fatal(err)
	}

	isolated := u.Sites()[0]
	fe := udr.NewSession(network, udr.Addr(isolated+"/fe"), isolated, udr.PolicyFE)
	ps := udr.NewSession(network, udr.Addr(isolated+"/ps"), isolated, udr.PolicyPS)

	exercise := func(label string) {
		fmt.Printf("--- %s ---\n", label)
		for _, p := range profiles {
			_, _, role, rerr := fe.ReadProfile(ctx, udr.MSISDN(p.MSISDNVal))
			readState := fmt.Sprintf("ok (via %s copy)", role)
			if rerr != nil {
				readState = "FAILED: " + rerr.Error()
			}
			_, werr := ps.Exec(ctx, udr.ExecReq{
				Identity: udr.IMSI(p.IMSIVal),
				Ops:      touchOps(),
			})
			writeState := "ok"
			if werr != nil {
				if errors.Is(werr, udr.ErrMasterUnreachable) {
					writeState = "FAILED: master unreachable (C over A)"
				} else {
					writeState = "FAILED: " + werr.Error()
				}
			}
			fmt.Printf("  %s (home %-10s)  FE read: %-22s  PS write: %s\n",
				p.ID, p.HomeRegion, readState, writeState)
		}
	}

	exercise("healthy network")

	fmt.Printf("\n*** backbone partition: %s isolated from the other sites ***\n\n", isolated)
	network.Partition([]string{isolated})
	exercise("during partition (observed from " + isolated + ")")

	network.Heal()
	fmt.Println("\n*** partition healed ***")
	fmt.Println()
	exercise("after heal")

	fmt.Println("\nThe paper's conclusion (§3.6): the UDR is PA/EL for front-end")
	fmt.Println("transactions but PC/EC for provisioning transactions.")
}

func touchOps() []udr.TxnOp {
	return []udr.TxnOp{{
		Kind: udr.TxnModify,
		Mods: []udr.Mod{{Kind: udr.ModReplace, Attr: "area", Vals: []string{"touched"}}},
	}}
}
