// Quickstart: build the paper's three-site UDR, provision a
// subscription through the PS path, run front-end network procedures
// against it from another continent, and inspect the placement.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	udr "repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The simulated multi-national network and the Figure 2 UDR:
	// three sites, each with one storage element mastering one
	// partition and carrying slave copies of the other two.
	network := udr.NewNetwork(udr.DefaultNetConfig())
	u, err := udr.New(network, udr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer u.Stop()

	fmt.Println("UDR topology:")
	for _, partID := range u.Partitions() {
		p, _ := u.Partition(partID)
		fmt.Printf("  %-16s home=%-10s master=%s (+%d slaves)\n",
			p.ID, p.HomeSite, p.Master().Addr, len(p.Replicas)-1)
	}

	// The provisioning system is co-located with a PoA (§3.3.3) and
	// uses the PS policy: master-copy access only.
	psSession := udr.NewSession(network, "eu-south/ps", "eu-south", udr.PolicyPS)

	profile := udr.NewGenerator("eu-south", "eu-north", "americas").Profile(42)
	profile.HomeRegion = "americas" // selective placement target (§3.5)
	resp, err := psSession.Provision(ctx, profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovisioned %s (MSISDN %s) onto partition %s\n",
		profile.ID, profile.MSISDNVal, resp.Partition)

	// An application front-end at another site reads through its own
	// PoA; the FE policy allows slave reads, so after replication the
	// read is served by the co-located copy.
	if err := u.WaitReplication(ctx); err != nil {
		log.Fatal(err)
	}
	feSession := udr.NewSession(network, "eu-north/fe", "eu-north", udr.PolicyFE)
	got, meta, role, err := feSession.ReadProfile(ctx, udr.MSISDN(profile.MSISDNVal))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read from eu-north: %s (home=%s) served by a %s copy, row CSN %d\n",
		got.ID, got.HomeRegion, role, meta.CSN)

	// Network procedures through a real front-end instance.
	front := udr.NewHSSFE(network, "eu-north", "hss-fe-1")
	if _, err := front.Authenticate(ctx, profile.IMSIVal); err != nil {
		log.Fatal(err)
	}
	if err := front.LocationUpdate(ctx, profile.IMSIVal, "mme-eu-north-1", "area-7", true); err != nil {
		log.Fatal(err)
	}
	route, err := front.MTCall(ctx, profile.MSISDNVal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network procedures done: authenticate, location update; MT call routes to %q\n", route)
	fmt.Printf("front-end issued %d LDAP operations over %d procedures\n",
		front.AuthenticateStats.Ops.Value()+front.LocationUpdateStats.Ops.Value()+front.MTCallStats.Ops.Value(), 3)
}
