// Rebalance: live partition migration under load. A two-site UDR
// carries an intentionally lopsided subscriber population; while
// front-end and provisioning traffic keeps flowing, the hot
// partition's master is migrated onto an idle storage element — bulk
// copy, live-stream catch-up, a bounded write-freeze cutover with a
// placement-epoch bump — and then an elastic rebalancing pass evens
// out the rest. Zero acknowledged writes are lost and the client
// traffic never sees an error: stale placements get retryable
// referrals that the PoA absorbs.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	udr "repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	network := udr.NewNetwork(udr.DefaultNetConfig())
	cfg := udr.DefaultConfig()
	cfg.Sites = []udr.SiteSpec{
		{Name: "eu-south", SEs: 2, PartitionsPerSE: 1},
		{Name: "eu-north", SEs: 2, PartitionsPerSE: 1},
	}
	cfg.ReplicationFactor = 2
	u, err := udr.New(network, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer u.Stop()

	// A lopsided base: most subscribers pinned onto one partition —
	// the organic growth §3.5's selective placement produces.
	const hot, cold = 3000, 300
	hotPart := "p-eu-south-0"
	ps := udr.NewSession(network, "eu-south/ps", "eu-south", udr.PolicyPS)
	gen := udr.NewGenerator(u.Sites()...)
	for i := 0; i < hot; i++ {
		if _, err := ps.ProvisionAt(ctx, gen.Profile(i), hotPart); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < cold; i++ {
		if _, err := ps.Provision(ctx, gen.Profile(hot+i)); err != nil {
			log.Fatal(err)
		}
	}
	printLoads(u)

	// Live traffic: paced FE reads and PS writes against the hot
	// partition, counting client-visible errors.
	var wg sync.WaitGroup
	var mu sync.Mutex
	writes, reads, errs := 0, 0, 0
	stop := make(chan struct{})
	sample := gen.Profile(0)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := udr.NewSession(network, udr.Addr(fmt.Sprintf("eu-south/load-%d", w)), "eu-south", udr.PolicyPS)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
				_, err := sess.Modify(ctx, udr.UID(gen.Profile(i%hot).ID),
					udr.Mod{Kind: udr.ModReplace, Attr: "lastSeen", Vals: []string{fmt.Sprint(i)}})
				mu.Lock()
				writes++
				if err != nil {
					errs++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		fe := udr.NewSession(network, "eu-north/fe", "eu-north", udr.PolicyFE)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			_, _, _, err := fe.ReadProfile(ctx, udr.UID(gen.Profile(i%hot).ID))
			mu.Lock()
			reads++
			if err != nil {
				errs++
			}
			mu.Unlock()
		}
	}()
	time.Sleep(50 * time.Millisecond)

	// The move: the hot master relocates cross-site onto an idle
	// element while the traffic above keeps flowing.
	fmt.Println("\n*** live migration: moving", hotPart, "to se-eu-north-1 ***")
	rep, err := u.MigratePartition(ctx, hotPart, "se-eu-north-1", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk copy: %d rows in %d batches (snapshot CSN %d)\n", rep.RowsCopied, rep.Batches, rep.SnapshotCSN)
	fmt.Printf("catch-up: %d live-stream records\n", rep.CatchUpRecords)
	fmt.Printf("cutover: write-freeze %v, handed over at CSN %d\n", rep.FreezeDuration, rep.FrozenCSN)

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	mu.Lock()
	fmt.Printf("\ntraffic during the move: %d writes, %d reads, %d client-visible errors\n", writes, reads, errs)
	mu.Unlock()

	part, _ := u.Partition(hotPart)
	fmt.Printf("new master: %s (epoch %d); source demoted to slave\n", part.Master().Element, part.Epoch)
	if got, _, role, err := udr.NewSession(network, "eu-north/check", "eu-north", udr.PolicyPS).
		ReadProfile(ctx, udr.UID(sample.ID)); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("master-copy read of %s via the new placement: ok (%s copy)\n", got.ID, role)
	}

	// Elastic rebalancing: even out whatever imbalance remains.
	fmt.Println("\n*** rebalancing pass ***")
	res, err := u.Rebalance(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
	printLoads(u)
}

// printLoads dumps the per-element master load the planner sees.
func printLoads(u *udr.UDR) {
	fmt.Println("\nper-element master load:")
	for _, l := range u.ElementLoads() {
		rows := 0
		for _, m := range l.Masters {
			rows += m.Rows
		}
		fmt.Printf("  %-16s site=%-10s masters=%d rows=%d\n", l.Element, l.Site, len(l.Masters), rows)
	}
}
