// Observe: run a UDR with the full observability surface — the
// metrics registry, the Prometheus /metrics exposition, the admin
// HTTP endpoints and the request tracer — drive a front-end workload
// against it, scrape /metrics twice, and read the WAL group-commit
// amortization and replication shipping lag off the deltas, exactly
// the way a Prometheus rate() query would. Then zoom from the
// aggregate to one request: render a sampled quorum-commit trace and
// read the fsync and quorum-ack-wait shares straight off its spans.
//
// This is the in-process version of what `udrd -admin :9100` serves;
// point a real Prometheus at udrd to get the same families and
// /trace/{recent,slow,<id>} endpoints.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	udr "repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A three-site UDR with durable WAL (fsync on every commit, group-
	// committed), quorum durability and anti-entropy repair — the
	// subsystems whose instruments we want to watch. The tracer
	// samples every request so the walkthrough below always has a
	// quorum-commit trace to render; production rates are 1/64-ish.
	walDir, err := os.MkdirTemp("", "udr-observe-wal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)

	tracer := udr.NewTracer(udr.TraceConfig{SampleRate: 1})
	network := udr.NewNetwork(udr.DefaultNetConfig())
	cfg := udr.DefaultConfig()
	cfg.WALDir = walDir
	cfg.WALMode = udr.WALSyncEveryCommit
	cfg.Durability = udr.DurabilityQuorum
	cfg.AntiEntropy = true
	cfg.Trace = tracer
	u, err := udr.New(network, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer u.Stop()

	// Wire the observability surface: register every UDR instrument
	// in a registry, serve it over HTTP. This is what udrd's -admin
	// flag does.
	reg := udr.NewMetricsRegistry()
	u.RegisterMetrics(reg)
	srv := udr.NewObsServer(udr.ObsConfig{Registry: reg, UDR: u, Tracer: tracer})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("admin HTTP on %s (GET /metrics, /healthz, /status)\n", base)

	// Provision some subscribers and keep their identities.
	ps := udr.NewSession(network, "eu-south/ps", "eu-south", udr.PolicyPS)
	gen := udr.NewGenerator(u.Sites()...)
	var imsis, msisdns []string
	for i := 0; i < 30; i++ {
		prof := gen.Profile(i)
		if _, err := ps.Provision(ctx, prof); err != nil {
			log.Fatal(err)
		}
		imsis = append(imsis, prof.IMSIVal)
		msisdns = append(msisdns, prof.MSISDNVal)
	}
	if err := u.WaitReplication(ctx); err != nil {
		log.Fatal(err)
	}

	// First scrape: the baseline a Prometheus server would hold.
	before := scrape(base + "/metrics")

	// A front-end workload: location updates (writes → WAL commits →
	// replication shipping) and call lookups (reads). Several
	// concurrent front-ends, so the WAL's group commit has concurrent
	// commits to coalesce — that is what pushes fsyncs-per-commit
	// below 1.0.
	const fes = 4
	errs := make(chan error, fes)
	for w := 0; w < fes; w++ {
		name := fmt.Sprintf("hss-fe-%d", w+1)
		front := udr.NewHSSFE(network, "eu-north", name)
		front.RegisterMetrics(reg, name) // per-procedure latency families
		front.AttachTracer(tracer)       // root spans per FE procedure
		go func(front *udr.FE) {
			for round := 0; round < 3; round++ {
				for i := range imsis {
					if err := front.LocationUpdate(ctx, imsis[i], "mme-eu-north-1", "area-7", true); err != nil {
						errs <- err
						return
					}
					if _, err := front.MTCall(ctx, msisdns[i]); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(front)
	}
	for w := 0; w < fes; w++ {
		if err := <-errs; err != nil {
			log.Fatal(err)
		}
	}

	// Second scrape: the deltas are what rate() would compute.
	after := scrape(base + "/metrics")

	appends := sum(after, "udr_wal_appends_total") - sum(before, "udr_wal_appends_total")
	fsyncs := sum(after, "udr_wal_fsyncs_total") - sum(before, "udr_wal_fsyncs_total")
	shipped := sum(after, "udr_replication_shipped_total") - sum(before, "udr_replication_shipped_total")
	lag := sum(after, "udr_replication_lag_records")
	served := sum(after, "udr_poa_ops_total") - sum(before, "udr_poa_ops_total")

	fmt.Printf("\nbetween the two scrapes the workload drove:\n")
	fmt.Printf("  PoA operations        %6.0f\n", served)
	fmt.Printf("  WAL commit records    %6.0f\n", appends)
	fmt.Printf("  WAL fsyncs            %6.0f\n", fsyncs)
	if appends > 0 {
		fmt.Printf("  fsyncs per commit     %6.3f  (group commit amortizes <1.0)\n", fsyncs/appends)
	}
	fmt.Printf("  records shipped       %6.0f  to replication peers\n", shipped)
	fmt.Printf("  current shipping lag  %6.0f  records (masters vs acked CSNs)\n", lag)

	// Zoom from the aggregates to one request: find a sampled write
	// trace whose commit waited on the replica quorum, render its
	// span tree, and attribute the root's latency to the durable
	// pieces — the WAL fsync and the quorum ack wait.
	for _, sum := range tracer.Recent(256) {
		if sum.Root.Name != "fe.LocationUpdate" {
			continue
		}
		spans := tracer.Get(sum.Trace)
		var fsync, ackwait, sends time.Duration
		var peers int
		for _, sp := range spans {
			switch sp.Name {
			case "wal.fsync":
				fsync += sp.Duration
			case "repl.ackwait":
				ackwait += sp.Duration
			case "repl.send":
				sends += sp.Duration
				peers++
			}
		}
		if ackwait == 0 {
			continue // a commit that never waited; pick a better one
		}
		fmt.Printf("\none sampled quorum commit (trace %s, also at GET /trace/%s):\n\n", sum.Trace, sum.Trace)
		fmt.Print(udr.RenderTrace(spans))
		fmt.Printf("\nwhere the %v went:\n", sum.Root.Duration.Round(time.Microsecond))
		fmt.Printf("  WAL fsync (group commit)  %8v  (%4.1f%%)\n",
			fsync.Round(time.Microsecond), 100*float64(fsync)/float64(sum.Root.Duration))
		fmt.Printf("  quorum ack wait           %8v  (%4.1f%%)  covering %d peer sends totalling %v\n",
			ackwait.Round(time.Microsecond), 100*float64(ackwait)/float64(sum.Root.Duration),
			peers, sends.Round(time.Microsecond))
		break
	}

	fmt.Printf("\nper-procedure latency lives in udr_fe_proc_latency_seconds{proc=...},\n")
	fmt.Printf("with trace-ID exemplars on its buckets; GET %s/trace/slow lists the\n", base)
	fmt.Printf("tail-sampled outliers. POST %s/admin/repair drives a repair round.\n", base)
}

// scrape GETs a /metrics URL and returns every sample line keyed by
// its full series name (metric{labels}).
func scrape(url string) map[string]float64 {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return out
}

// sum totals every series of one metric family.
func sum(samples map[string]float64, family string) float64 {
	var total float64
	for series, v := range samples {
		if series == family || strings.HasPrefix(series, family+"{") {
			total += v
		}
	}
	return total
}
