// Roaming: selective placement in action (§3.5). Subscribers pinned
// near their home region are served from the local site at LAN
// latency; when a user roams, the serving front-end reaches across
// the backbone (or hits a local slave copy) — the H-R trade-off the
// paper balances with placement.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	udr "repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	network := udr.NewNetwork(udr.DefaultNetConfig())
	// Replication factor 2: each partition has a master at its home
	// site and one slave at the next site — so, unlike the RF=3
	// default, not every site holds every copy, and roaming can
	// genuinely cross the backbone.
	cfg := udr.DefaultConfig()
	cfg.ReplicationFactor = 2
	u, err := udr.New(network, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer u.Stop()

	sites := u.Sites()
	ps := udr.NewSession(network, udr.Addr(sites[0]+"/ps"), sites[0], udr.PolicyPS)

	// Provision one subscriber per region; selective placement pins
	// each onto a partition mastered in their home region.
	gen := udr.NewGenerator(sites...)
	var profiles []*udr.Profile
	for i := 0; i < len(sites); i++ {
		p := gen.Profile(i)
		resp, err := ps.Provision(ctx, p)
		if err != nil {
			log.Fatal(err)
		}
		part, _ := u.Partition(resp.Partition)
		fmt.Printf("%s home=%-10s placed on %s (home site %s)\n",
			p.ID, p.HomeRegion, resp.Partition, part.HomeSite)
		profiles = append(profiles, p)
	}
	if err := u.WaitReplication(ctx); err != nil {
		log.Fatal(err)
	}

	// A call-setup read at the subscriber's home site vs while
	// roaming at a remote site.
	measure := func(feSite string, p *udr.Profile) (time.Duration, udr.Addr) {
		fe := udr.NewSession(network, udr.Addr(feSite+"/fe"), feSite, udr.PolicyFE)
		start := time.Now()
		resp, err := fe.Exec(ctx, udr.ExecReq{
			Identity: udr.MSISDN(p.MSISDNVal),
			Ops:      []udr.TxnOp{{Kind: udr.TxnGet}},
		})
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start), resp.ServedBy
	}

	fmt.Println("\ncall-setup profile read, home vs roaming:")
	for _, p := range profiles {
		home := p.HomeRegion
		var roamSite string
		for _, s := range sites {
			if s != home {
				roamSite = s
			}
		}
		dHome, byHome := measure(home, p)
		dRoam, byRoam := measure(roamSite, p)
		fmt.Printf("  %s: at home (%s) %-10v via %-24s roaming (%s) %-10v via %s\n",
			p.ID, home, dHome.Round(10*time.Microsecond), byHome,
			roamSite, dRoam.Round(10*time.Microsecond), byRoam)
	}

	fmt.Println("\npaper §3.5: pinning data to the home region means 'chances of having")
	fmt.Println("to surf the IP back-bone to obtain that subscriber's data decrease")
	fmt.Println("enormously. Only when the user leaves her home region (she roams),")
	fmt.Println("the application front-end ... might have to go to a remote location.'")
}
